package service

// explain.go — GET /v1/explain/{serve_id}: an EXPLAIN for the doctor's own
// decision. Every served plan already passes through the pendingServe ring
// on its way to feedback; explain reads that captured context back out, so
// the serve path pays nothing for explainability until someone asks. The
// response reconstructs the full story of one serve: the plan that was
// served (with its tree), the expert plan the traditional optimizer would
// have run, the hint diff between them, the tier decision that routed the
// request, and — when the replica supports it — the candidate pool with
// per-candidate AAM scores.

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/tier"
)

// candidateExplainer is the optional replica capability behind the
// per-candidate score card: re-derive the candidate pool for a query and
// score every candidate against the selected plan. *core.System implements
// it; replicas without it (test fakes) simply explain without candidates.
type candidateExplainer interface {
	ExplainCandidates(ctx context.Context, q *query.Query) ([]planner.CandidateScore, error)
}

// explainPlanJSON is planJSON plus the rendered artifacts: the pg_hint_plan
// style hint string and the indented plan tree.
type explainPlanJSON struct {
	planJSON
	Hints string `json:"hints,omitempty"`
	Tree  string `json:"tree,omitempty"`
}

// hintDiffJSON is the structural diff between the served and expert plans.
type hintDiffJSON struct {
	// MatchesExpert: the served plan IS the expert plan (no steering).
	MatchesExpert bool `json:"matches_expert"`
	// OrderChanged: the join orders differ (method changes are only
	// enumerated when the orders line up).
	OrderChanged  bool     `json:"order_changed"`
	MethodChanges []string `json:"method_changes,omitempty"`
	ServedKey     string   `json:"served_key"`
	ExpertKey     string   `json:"expert_key"`
}

// explainResponse is the /v1/explain/{serve_id} body.
type explainResponse struct {
	ServeID     string `json:"serve_id"`
	QueryID     string `json:"query_id"`
	Fingerprint string `json:"fingerprint"`
	// Epoch is the model generation that served the plan (the candidate
	// score card, if present, is computed under CandidatesEpoch instead).
	Epoch        uint64  `json:"epoch"`
	Tier         int     `json:"tier"`
	TierDecision string  `json:"tier_decision"`
	CacheHit     bool    `json:"cache_hit"`
	OptTimeMs    float64 `json:"opt_time_ms"`
	// Recorded / LatencyMs report the feedback state: latency is present
	// once the execution was recorded (either path).
	Recorded  bool     `json:"recorded"`
	LatencyMs *float64 `json:"latency_ms,omitempty"`

	Served      explainPlanJSON  `json:"served"`
	Expert      *explainPlanJSON `json:"expert,omitempty"`
	ExpertError string           `json:"expert_error,omitempty"`
	HintDiff    *hintDiffJSON    `json:"hint_diff,omitempty"`

	// Candidates is the per-candidate AAM score card, re-derived under the
	// CURRENT model (CandidatesEpoch): after a hot-swap it explains what
	// today's model thinks of that pool, not a replay of the old epoch.
	Candidates      []planner.CandidateScore `json:"candidates,omitempty"`
	CandidatesEpoch uint64                   `json:"candidates_epoch,omitempty"`
	CandidatesError string                   `json:"candidates_error,omitempty"`
}

func (s *HTTPServer) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/explain/")
	var seq uint64
	if _, err := fmt.Sscanf(id, "s%d", &seq); err != nil || fmt.Sprintf("s%d", seq) != id {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown serve_id %q", id))
		return
	}
	// Peek, don't consume: explaining a serve must not interfere with its
	// pending feedback. The snapshot copies the entry under mu so the
	// rendering below runs lock-free.
	s.mu.Lock()
	ps, ok := s.pending[seq]
	var snap pendingServe
	if ok {
		snap = *ps
	}
	horizon := s.evictedThrough
	s.mu.Unlock()
	if !ok {
		if seq > 0 && seq <= horizon {
			writeErr(w, http.StatusGone,
				fmt.Sprintf("serve_id %q left the ring (holds %d) before it was explained", id, s.opts.MaxPending))
			return
		}
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown serve_id %q", id))
		return
	}

	resp := explainResponse{
		ServeID:      id,
		QueryID:      snap.q.ID,
		Fingerprint:  fmt.Sprintf("%016x", snap.q.Fingerprint()),
		Epoch:        snap.res.Epoch,
		Tier:         snap.res.Tier,
		TierDecision: tierDecision(snap.res),
		CacheHit:     snap.res.CacheHit,
		OptTimeMs:    snap.res.OptTime.Seconds() * 1000,
		Recorded:     snap.consumed,
		Served:       explainPlan(snap.pe),
	}
	if snap.hasLatency {
		lat := snap.latencyMs
		resp.LatencyMs = &lat
	}

	active := s.lp.Active()
	if ecp, _, err := active.ExpertPlan(snap.q); err != nil {
		resp.ExpertError = err.Error()
	} else {
		ep := &explainPlanJSON{}
		ep.Tree = ecp.String()
		if ecp.Root != nil {
			ep.EstCost = ecp.Root.EstCost
			ep.EstRows = ecp.Root.EstRows
		}
		if eicp, err := plan.Extract(ecp); err != nil {
			resp.ExpertError = "hint diff unavailable: " + err.Error()
		} else {
			ep.planJSON.Order = append([]string(nil), eicp.Order...)
			ep.planJSON.Methods = methodNames(eicp.Methods)
			ep.planJSON.ICPKey = eicp.Key()
			ep.Hints = eicp.FormatHints()
			resp.HintDiff = diffICP(snap.pe.ICP, eicp)
		}
		resp.Expert = ep
	}

	if ce, ok := active.(candidateExplainer); ok {
		if scores, err := ce.ExplainCandidates(r.Context(), snap.q); err != nil {
			resp.CandidatesError = err.Error()
		} else {
			resp.Candidates = scores
			resp.CandidatesEpoch = s.lp.Epoch()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// explainPlan renders a served candidate: the planJSON summary (identical to
// the optimize row's — the round-trip test pins this bit-for-bit) plus the
// hint string and the plan tree.
func explainPlan(pe *planner.PlanEval) explainPlanJSON {
	ep := explainPlanJSON{planJSON: planSummary(pe)}
	ep.Hints = pe.ICP.FormatHints()
	if pe.CP != nil {
		ep.Tree = pe.CP.String()
	}
	return ep
}

// tierDecision renders the routing decision behind a serve.
func tierDecision(res Result) string {
	switch res.Tier {
	case tier.Tier0:
		return "tier-0 plan memory: feedback-proven pin answered without touching the model"
	case tier.Tier1:
		if res.CacheHit {
			return "tier-1 greedy micro-planner: cached greedy plan for a seen, unpinned fingerprint"
		}
		return "tier-1 greedy micro-planner: greedy plan built for a seen, unpinned fingerprint"
	default:
		if res.CacheHit {
			return "tier-2 full AAM steering: plan-cache hit on the active replica"
		}
		return "tier-2 full AAM steering: candidate pool scored by the advantage model"
	}
}

func methodNames(ms []plan.JoinMethod) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.String()
	}
	return out
}

// diffICP computes the structural served-vs-expert hint diff.
func diffICP(served, expert plan.ICP) *hintDiffJSON {
	d := &hintDiffJSON{
		MatchesExpert: served.Equal(expert),
		ServedKey:     served.Key(),
		ExpertKey:     expert.Key(),
	}
	orderSame := len(served.Order) == len(expert.Order)
	if orderSame {
		for i := range served.Order {
			if served.Order[i] != expert.Order[i] {
				orderSame = false
				break
			}
		}
	}
	d.OrderChanged = !orderSame
	if orderSame {
		for i := range served.Methods {
			if i < len(expert.Methods) && served.Methods[i] != expert.Methods[i] {
				// Methods[i] is the method of join i+1; Order[i+1] is the
				// leaf that join adds.
				d.MethodChanges = append(d.MethodChanges, fmt.Sprintf(
					"join %d (%s): expert %s -> served %s",
					i+1, served.Order[i+1], expert.Methods[i], served.Methods[i]))
			}
		}
	}
	return d
}
