//go:build !race

package service

// raceEnabled reports whether the race detector is active; alloc-count gates
// are skipped under -race because instrumentation changes allocation counts.
const raceEnabled = false
