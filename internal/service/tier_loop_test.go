package service

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/store"
	"github.com/foss-db/foss/internal/tier"
)

// tierConfig is syncConfig with the drift detector silenced and a tier
// configuration applied, so tests exercise the tier router without swaps
// interfering.
func tierConfig(tc tier.Config) Config {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100 // never drift
	cfg.Tier = tc
	return cfg
}

// TestTierPromotionServesIdenticalPlan: after PromoteAfter wins against the
// expert baseline, the fingerprint is pinned and tier-0 hits return the
// exact promoted plan object — bit-identical to what tier 2 served.
func TestTierPromotionServesIdenticalPlan(t *testing.T) {
	lp := New(tierConfig(tier.Config{Memory: true}), newFake("blue"), newFake("green"), nil)
	q := fq(1)
	first, err := lp.Serve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Tier != tier.Tier2 {
		t.Fatalf("novel query served at tier %d, want 2", first.Tier)
	}
	lp.Record(q, first.Eval, 5) // the fake's expert executes at 10 → a win
	for i := 0; i < 2; i++ {
		res, err := lp.Serve(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tier != tier.Tier2 {
			t.Fatalf("pre-promotion serve %d at tier %d, want 2", i, res.Tier)
		}
		lp.Record(q, res.Eval, 5)
	}
	st := lp.Stats()
	if st.Promotions != 1 || st.PinnedPlans != 1 {
		t.Fatalf("after 3 wins: promotions=%d pins=%d, want 1/1", st.Promotions, st.PinnedPlans)
	}
	hit, err := lp.Serve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Tier != tier.Tier0 || !hit.CacheHit {
		t.Fatalf("post-promotion serve: tier=%d cacheHit=%v, want tier 0 hit", hit.Tier, hit.CacheHit)
	}
	// The pin is the best (first, lowest-latency) recorded eval — the very
	// object tier 2 produced, so the hit is trivially bit-identical.
	if hit.Eval != first.Eval {
		t.Fatal("tier-0 hit returned a different plan object than the promoted tier-2 eval")
	}
	if st := lp.Stats(); st.Tier0Hits != 1 || st.Tier2Serves != 3 {
		t.Fatalf("tier counters t0=%d t2=%d, want 1/3", st.Tier0Hits, st.Tier2Serves)
	}
}

// TestTier0ServeZeroAllocs pins the tier-0 hit path to zero allocations:
// memoized fingerprint, atomic slot load, read-locked map lookup, atomic
// counters — nothing may escape to the heap.
func TestTier0ServeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	lp := New(tierConfig(tier.Config{Memory: true}), newFake("blue"), newFake("green"), nil)
	q := fq(7)
	for i := 0; i < 3; i++ {
		res, err := lp.Serve(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		lp.Record(q, res.Eval, 5)
	}
	if lp.Stats().PinnedPlans != 1 {
		t.Fatal("fixture did not promote a pin")
	}
	ctx := context.Background()
	avg := testing.AllocsPerRun(200, func() {
		res, err := lp.Serve(ctx, q)
		if err != nil || res.Tier != tier.Tier0 {
			panic("not a tier-0 hit")
		}
	})
	if avg != 0 {
		t.Fatalf("tier-0 Serve allocates %.1f objects per call, want 0", avg)
	}
}

// TestTierEscalationDropsPin: a pinned plan regressing past EscalateRatio is
// demoted immediately, and the regression latch blocks re-promotion for the
// rest of the epoch.
func TestTierEscalationDropsPin(t *testing.T) {
	lp := New(tierConfig(tier.Config{Memory: true}), newFake("blue"), newFake("green"), nil)
	q := fq(2)
	for i := 0; i < 3; i++ {
		res, err := lp.Serve(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		lp.Record(q, res.Eval, 5)
	}
	hit, err := lp.Serve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Tier != tier.Tier0 {
		t.Fatalf("fixture did not promote: tier %d", hit.Tier)
	}
	lp.Record(q, hit.Eval, 100) // 100ms > 1.5 × the expert's 10ms → escalate
	st := lp.Stats()
	if st.Demotions != 1 || st.PinnedPlans != 0 {
		t.Fatalf("after regression: demotions=%d pins=%d, want 1/0", st.Demotions, st.PinnedPlans)
	}
	// Regressed fingerprints stay on tier 2 and never re-pin this epoch,
	// however many wins follow.
	for i := 0; i < 4; i++ {
		res, err := lp.Serve(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tier != tier.Tier2 {
			t.Fatalf("regressed fingerprint served at tier %d, want 2", res.Tier)
		}
		lp.Record(q, res.Eval, 5)
	}
	if st := lp.Stats(); st.Promotions != 1 {
		t.Fatalf("regressed fingerprint re-promoted inside the epoch: %d promotions", st.Promotions)
	}
}

// TestTierGreedyServesRepeatFingerprint: with tier 1 enabled, the second
// sighting of a fingerprint is served by the greedy micro-planner, the third
// by its cached completion, and a regression escalates it back to tier 2.
func TestTierGreedyServesRepeatFingerprint(t *testing.T) {
	lp := New(tierConfig(tier.Config{Greedy: true}), newFake("blue"), newFake("green"), nil)
	q := fq(3)
	res, err := lp.Serve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != tier.Tier2 {
		t.Fatalf("first sighting at tier %d, want 2", res.Tier)
	}
	lp.Record(q, res.Eval, 5)

	g1, err := lp.Serve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Tier != tier.Tier1 || g1.CacheHit {
		t.Fatalf("second sighting: tier=%d cacheHit=%v, want fresh tier-1", g1.Tier, g1.CacheHit)
	}
	g2, err := lp.Serve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Tier != tier.Tier1 || !g2.CacheHit {
		t.Fatalf("third sighting: tier=%d cacheHit=%v, want cached tier-1", g2.Tier, g2.CacheHit)
	}
	if st := lp.Stats(); st.Tier1Hits != 2 {
		t.Fatalf("tier-1 hits %d, want 2", st.Tier1Hits)
	}
	lp.Record(q, g2.Eval, 100) // greedy plan regressed → escalate
	after, err := lp.Serve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Tier != tier.Tier2 {
		t.Fatalf("regressed greedy fingerprint served at tier %d, want 2", after.Tier)
	}
}

// TestHotSwapInvalidatesPlanMemory is the regression test for the shared
// composite identity: a hot-swap must invalidate the tier-0 plan memory in
// the same step that bumps the epoch (which already invalidates the runtime
// plan cache through the same runtime.Identity key), leaving no window where
// a stale pin can answer for the new model.
func TestHotSwapInvalidatesPlanMemory(t *testing.T) {
	cfg := syncConfig() // threshold 1.2: sustained ratio-10 regressions drift
	cfg.Tier = tier.Config{Memory: true}
	lp := New(cfg, newFake("blue"), newFake("green"), nil)
	q := fq(4)
	for i := 0; i < 3; i++ {
		res, err := lp.Serve(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		lp.Record(q, res.Eval, 5)
	}
	if st := lp.Stats(); st.PinnedPlans != 1 {
		t.Fatalf("fixture did not promote: %d pins", st.PinnedPlans)
	}
	// Sustained regression on other fingerprints → drift → sync retrain+swap.
	for i := int64(0); i < 4; i++ {
		res, err := lp.Serve(context.Background(), fq(100+i))
		if err != nil {
			t.Fatal(err)
		}
		lp.Record(fq(100+i), res.Eval, 100)
	}
	st := lp.Stats()
	if st.Swaps < 1 {
		t.Fatalf("no hot-swap: %+v", st)
	}
	if st.PinnedPlans != 0 {
		t.Fatalf("hot-swap left %d stale pins in plan memory", st.PinnedPlans)
	}
	res, err := lp.Serve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != tier.Tier0 && res.Epoch != lp.Epoch() {
		t.Fatalf("post-swap serve: tier=%d epoch=%d loop epoch=%d", res.Tier, res.Epoch, lp.Epoch())
	}
	if res.Tier != tier.Tier2 {
		t.Fatalf("post-swap serve at tier %d, want 2 (pins must re-earn trust)", res.Tier)
	}
}

// TestDDLInvalidatesPlanMemory is TestHotSwapInvalidatesPlanMemory's
// schema-evolution sibling: a DDL apply must invalidate tier-0 plan memory in
// the same step that bumps the serving epoch (no weight swap happens, but the
// pinned plans were chosen against the retired schema generation), and the
// surviving fingerprints must re-earn their pins against the evolved catalog.
func TestDDLInvalidatesPlanMemory(t *testing.T) {
	lp := New(tierConfig(tier.Config{Memory: true}), newFake("blue"), newFake("green"), nil)
	q := fq(4)
	for i := 0; i < 3; i++ {
		res, err := lp.Serve(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		lp.Record(q, res.Eval, 5)
	}
	if st := lp.Stats(); st.PinnedPlans != 1 {
		t.Fatalf("fixture did not promote: %d pins", st.PinnedPlans)
	}
	// An index change on the pinned query's own table: the query stays
	// servable, but every plan chosen against the old physical design is out.
	if _, err := lp.ApplyDDL([]catalog.DDL{{Kind: catalog.DDLAddIndex, Table: "a", Column: "c"}}); err != nil {
		t.Fatal(err)
	}
	st := lp.Stats()
	if st.Swaps != 0 {
		t.Fatalf("DDL must not swap replicas: %+v", st)
	}
	if st.PinnedPlans != 0 {
		t.Fatalf("DDL left %d stale pins in plan memory", st.PinnedPlans)
	}
	res, err := lp.Serve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 2 {
		t.Fatalf("post-DDL serve at epoch %d, want 2", res.Epoch)
	}
	if res.Tier != tier.Tier2 {
		t.Fatalf("post-DDL serve at tier %d, want 2 (pins must re-earn trust)", res.Tier)
	}
}

// TestTierDecisionsDeterministic: identical traffic into two fresh loops
// yields the identical tier decision sequence — the router is a pure
// function of the feedback stream.
func TestTierDecisionsDeterministic(t *testing.T) {
	run := func() []int {
		lp := New(tierConfig(tier.Config{Memory: true, Greedy: true, PromoteAfter: 2}),
			newFake("blue"), newFake("green"), nil)
		var tiers []int
		for i := 0; i < 40; i++ {
			q := fq(int64(i % 5))
			res, err := lp.Serve(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			tiers = append(tiers, res.Tier)
			lat := 5.0
			if i%7 == 0 {
				lat = 100 // periodic regressions exercise escalation
			}
			lp.Record(q, res.Eval, lat)
		}
		return tiers
	}
	a, b := run(), run()
	seen := map[int]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tier decision diverged at query %d: %d vs %d", i, a[i], b[i])
		}
		seen[a[i]] = true
	}
	if !seen[tier.Tier0] || !seen[tier.Tier1] || !seen[tier.Tier2] {
		t.Fatalf("traffic did not exercise all three tiers: %v", seen)
	}
}

// TestTierStateRebuiltByReplay: WAL replay re-derives the identical tier
// state from the feedback stream alone — pins, win streaks, and regression
// latches — without consulting the journaled promote/demote records.
func TestTierStateRebuiltByReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tierConfig(tier.Config{Memory: true})
	cfg.Store = st
	lp := New(cfg, newFake("blue"), newFake("green"), nil)
	q := fq(9)
	for i := 0; i < 3; i++ {
		res, err := lp.Serve(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		lp.Record(q, res.Eval, 5)
	}
	live := lp.Stats()
	if live.Promotions != 1 || live.PinnedPlans != 1 {
		t.Fatalf("live loop did not promote: %+v", live)
	}
	st.Close()

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var entries []store.WALEntry
	if err := st2.WAL().Replay(0, func(e store.WALEntry) error { entries = append(entries, e); return nil }); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Store = st2
	lp2 := New(cfg2, newFake("blue2"), newFake("green2"), nil)
	if _, err := lp2.Replay(entries); err != nil {
		t.Fatal(err)
	}
	rebuilt := lp2.Stats()
	if rebuilt.PinnedPlans != 1 {
		t.Fatalf("replay rebuilt %d pins, want 1", rebuilt.PinnedPlans)
	}
	res, err := lp2.Serve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != tier.Tier0 {
		t.Fatalf("replayed loop serves the pinned fingerprint at tier %d, want 0", res.Tier)
	}
}

// TestTierHitRatioRepeatTrace is the CI gate for the router's usefulness: a
// repeat-heavy trace (8 fingerprints, 25 sightings each, feedback after
// every serve) must end up served overwhelmingly by the fast tiers — first
// sighting at tier 2, the next at tier 1, pinned at tier 0 once the win
// streak lands.
func TestTierHitRatioRepeatTrace(t *testing.T) {
	lp := New(tierConfig(tier.Config{Memory: true, Greedy: true, PromoteAfter: 3}),
		newFake("blue"), newFake("green"), nil)
	for i := 0; i < 200; i++ {
		q := fq(int64(i % 8))
		res, err := lp.Serve(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		lp.Record(q, res.Eval, 5)
	}
	st := lp.Stats()
	fast := st.Tier0Hits + st.Tier1Hits
	ratio := float64(fast) / float64(st.Served)
	if ratio < 0.85 {
		t.Fatalf("fast-tier hit ratio %.2f (t0=%d t1=%d of %d served), want >= 0.85",
			ratio, st.Tier0Hits, st.Tier1Hits, st.Served)
	}
	if st.Tier0Hits == 0 || st.Tier1Hits == 0 {
		t.Fatalf("trace must exercise both fast tiers: t0=%d t1=%d", st.Tier0Hits, st.Tier1Hits)
	}
}

// TestTierPromotionRacesHotSwap is the -race soak: repeat traffic drives
// promotions, tier-0 hits, and escalations while a slow background retrain
// swaps the model and invalidates the plan memory underneath them.
func TestTierPromotionRacesHotSwap(t *testing.T) {
	cfg := syncConfig()
	cfg.Background = true
	cfg.Tier = tier.Config{Memory: true, Greedy: true, PromoteAfter: 2}
	blue, green := newFake("blue"), newFake("green")
	green.trainDelay = 50 * time.Millisecond
	lp := New(cfg, blue, green, nil)

	// Trip the drift detector so a background retrain is in flight.
	for i := int64(0); i < 4; i++ {
		res, err := lp.Serve(context.Background(), fq(i))
		if err != nil {
			t.Fatal(err)
		}
		lp.Record(fq(i), res.Eval, 100)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 100; i++ {
				q := fq(1000 + i%8) // repeat traffic: promotion and tier-0 hits race the swap
				res, err := lp.Serve(context.Background(), q)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Eval == nil {
					t.Error("nil plan under tier racing")
					return
				}
				lp.Record(q, res.Eval, 5)
			}
		}()
	}
	wg.Wait()
	lp.Wait()
	if st := lp.Stats(); st.RetrainErrors != 0 || st.Swaps < 1 {
		t.Fatalf("swap did not complete cleanly under tier traffic: %+v", st)
	}
}
