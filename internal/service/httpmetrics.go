package service

// httpmetrics.go — GET /metrics: the Prometheus text projection of the
// loop's counters and the per-tier serve-latency histograms. Everything here
// is derived from state the serve path already maintains (atomic counters,
// fixed-bucket histograms); a scrape allocates, the record path does not.
//
// The multi-tenant server reuses scrapeRow per shard and writes every
// tenant's series under one family header with a tenant label — the text
// format forbids repeating # TYPE blocks, so families iterate outside,
// tenants inside.

import (
	"net/http"
	"strconv"

	"github.com/foss-db/foss/internal/metrics"
	"github.com/foss-db/foss/internal/repl"
	"github.com/foss-db/foss/internal/runtime"
)

// promContentType is the text exposition format version Prometheus expects.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// scrapeRow is one tenant's worth of a scrape. tenant "" means the
// single-tenant server: no tenant label on any series.
type scrapeRow struct {
	tenant  string
	backend string
	stats   Stats
	cache   runtime.CacheStats
	hist    [3]metrics.HistSnapshot
	pending int
	expired uint64

	advisorOn              bool
	advEmitted, advDropped uint64

	// replOn marks a row whose server runs a replication tailer (a
	// follower); the repl gauges are emitted only for such rows so a leader's
	// scrape carries no misleading zero-lag series.
	replOn bool
	repl   repl.Stats
}

// scrape assembles this server's row. The histograms snapshot BEFORE Stats
// so Σ histogram counts ≤ Served holds in every concurrent scrape (equal
// once traffic quiesces — the CI gate's assertion).
func (s *HTTPServer) scrape(tenant string) scrapeRow {
	hist := s.lp.ServeHistograms()
	st := s.lp.Stats()
	active := s.lp.Active()
	s.mu.Lock()
	pending := s.live
	s.mu.Unlock()
	emitted, dropped := s.lp.AdvisorCounters()
	row := scrapeRow{
		tenant:     tenant,
		backend:    active.BackendName(),
		stats:      st,
		cache:      active.CacheStats(),
		hist:       hist,
		pending:    pending,
		expired:    s.expired.Load(),
		advisorOn:  s.lp.AdvisorEnabled(),
		advEmitted: emitted,
		advDropped: dropped,
	}
	if s.opts.ReplStats != nil {
		row.replOn = true
		row.repl = s.opts.ReplStats()
	}
	return row
}

func (s *HTTPServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeMetricsText(w, []scrapeRow{s.scrape("")})
}

// metricsFamilies enumerates every (family, per-row emit) pair once, so the
// single-tenant and aggregate scrapes cannot drift apart.
func writeMetricsText(w http.ResponseWriter, rows []scrapeRow) {
	var e metrics.Expo

	labels := func(row scrapeRow, extra ...metrics.Label) []metrics.Label {
		var ls []metrics.Label
		if row.tenant != "" {
			ls = append(ls, metrics.Label{Key: "tenant", Value: row.tenant})
		}
		return append(ls, extra...)
	}
	counter := func(name, help string, get func(scrapeRow) uint64) {
		e.Family(name, help, "counter")
		for _, row := range rows {
			e.Uint(name, labels(row), get(row))
		}
	}
	gauge := func(name, help string, get func(scrapeRow) float64) {
		e.Family(name, help, "gauge")
		for _, row := range rows {
			e.Sample(name, labels(row), get(row))
		}
	}

	// The serve-latency histogram leads: one family, one series per
	// (tenant, tier).
	e.Family("foss_serve_latency_seconds", "Serve latency by serving tier (optimization time, not execution).", "histogram")
	for _, row := range rows {
		for t := 0; t < 3; t++ {
			e.Hist("foss_serve_latency_seconds",
				labels(row, metrics.Label{Key: "tier", Value: strconv.Itoa(t)}), row.hist[t])
		}
	}

	counter("foss_served_total", "Queries served.", func(r scrapeRow) uint64 { return r.stats.Served })
	counter("foss_serve_cache_hits_total", "Serves answered from a plan cache or pin.", func(r scrapeRow) uint64 { return r.stats.CacheHits })
	counter("foss_recorded_total", "Executed-plan feedback records ingested.", func(r scrapeRow) uint64 { return r.stats.Recorded })
	counter("foss_drift_triggers_total", "Drift detector firings that triggered a retrain.", func(r scrapeRow) uint64 { return r.stats.Drifts })
	counter("foss_retrains_total", "Background retrains started.", func(r scrapeRow) uint64 { return r.stats.Retrains })
	counter("foss_hot_swaps_total", "Replica hot-swaps completed.", func(r scrapeRow) uint64 { return r.stats.Swaps })
	counter("foss_retrain_errors_total", "Retrains that failed.", func(r scrapeRow) uint64 { return r.stats.RetrainErrors })
	counter("foss_expert_errors_total", "Expert-baseline failures (neutral drift ratio recorded).", func(r scrapeRow) uint64 { return r.stats.ExpertErrors })

	counter("foss_wal_entries_total", "Intact records in the journal, replayed plus live.", func(r scrapeRow) uint64 { return r.stats.WALEntries })
	counter("foss_wal_errors_total", "Journal append failures (feedback kept in memory only).", func(r scrapeRow) uint64 { return r.stats.WALErrors })
	counter("foss_checkpoints_total", "Checkpoints written.", func(r scrapeRow) uint64 { return r.stats.Checkpoints })
	counter("foss_checkpoint_errors_total", "Checkpoint write failures.", func(r scrapeRow) uint64 { return r.stats.CheckpointErrors })
	gauge("foss_wal_replayed", "WAL records replayed into this process at recovery.", func(r scrapeRow) float64 { return float64(r.stats.Replayed) })

	e.Family("foss_tier_serves_total", "Serves answered per tier (0=plan memory, 1=greedy, 2=full AAM).", "counter")
	for _, row := range rows {
		e.Uint("foss_tier_serves_total", labels(row, metrics.Label{Key: "tier", Value: "0"}), row.stats.Tier0Hits)
		e.Uint("foss_tier_serves_total", labels(row, metrics.Label{Key: "tier", Value: "1"}), row.stats.Tier1Hits)
		e.Uint("foss_tier_serves_total", labels(row, metrics.Label{Key: "tier", Value: "2"}), row.stats.Tier2Serves)
	}
	counter("foss_tier_promotions_total", "Plans pinned into tier-0 memory.", func(r scrapeRow) uint64 { return r.stats.Promotions })
	counter("foss_tier_demotions_total", "Tier-0 pins escalated back on regression.", func(r scrapeRow) uint64 { return r.stats.Demotions })
	gauge("foss_tier_pinned_plans", "Live tier-0 pins.", func(r scrapeRow) float64 { return float64(r.stats.PinnedPlans) })

	counter("foss_plan_cache_hits_total", "Replica plan-cache hits.", func(r scrapeRow) uint64 { return r.cache.Hits })
	counter("foss_plan_cache_misses_total", "Replica plan-cache misses.", func(r scrapeRow) uint64 { return r.cache.Misses })
	counter("foss_plan_cache_evictions_total", "Replica plan-cache evictions.", func(r scrapeRow) uint64 { return r.cache.Evictions })
	gauge("foss_plan_cache_size", "Replica plan-cache entries.", func(r scrapeRow) float64 { return float64(r.cache.Size) })

	gauge("foss_epoch", "Current model generation.", func(r scrapeRow) float64 { return float64(r.stats.Epoch) })
	gauge("foss_catalog_epoch", "Live catalog generation (applied DDL statements).", func(r scrapeRow) float64 { return float64(r.stats.CatalogEpoch) })
	counter("foss_ddl_applies_total", "Schema-evolution DDL batches applied.", func(r scrapeRow) uint64 { return r.stats.CatalogApplies })
	counter("foss_stale_invalidations_total", "Requests or feedback refused because a DDL outdated their schema.", func(r scrapeRow) uint64 { return r.stats.StaleInvalidations })
	gauge("foss_retraining", "1 while a background retrain runs.", func(r scrapeRow) float64 {
		if r.stats.Retraining {
			return 1
		}
		return 0
	})
	gauge("foss_pending_feedback", "Served plans awaiting feedback in the ring.", func(r scrapeRow) float64 { return float64(r.pending) })
	counter("foss_expired_serve_ids_total", "Serve ids evicted before their feedback arrived.", func(r scrapeRow) uint64 { return r.expired })

	gauge("foss_advisor_enabled", "1 when the async advisor runs.", func(r scrapeRow) float64 {
		if r.advisorOn {
			return 1
		}
		return 0
	})
	counter("foss_advisor_findings_total", "Advisor findings emitted.", func(r scrapeRow) uint64 { return r.advEmitted })
	counter("foss_advisor_dropped_total", "Advisor observations dropped under backpressure.", func(r scrapeRow) uint64 { return r.advDropped })

	// Replication families: emitted only when some row runs a tailer (a
	// follower), so leader scrapes carry no misleading zero-lag series and
	// no sampleless family declarations.
	anyRepl := false
	for _, row := range rows {
		if row.replOn {
			anyRepl = true
		}
	}
	replGauge := func(name, help string, get func(repl.Stats) float64) {
		if !anyRepl {
			return
		}
		e.Family(name, help, "gauge")
		for _, row := range rows {
			if row.replOn {
				e.Sample(name, labels(row), get(row.repl))
			}
		}
	}
	replCounter := func(name, help string, get func(repl.Stats) uint64) {
		if !anyRepl {
			return
		}
		e.Family(name, help, "counter")
		for _, row := range rows {
			if row.replOn {
				e.Uint(name, labels(row), get(row.repl))
			}
		}
	}
	replGauge("foss_repl_last_applied_walseq", "WAL horizon of the last checkpoint this follower applied.",
		func(s repl.Stats) float64 { return float64(s.LastAppliedWALSeq) })
	replGauge("foss_repl_last_applied_epoch", "Model generation of the last checkpoint this follower applied.",
		func(s repl.Stats) float64 { return float64(s.LastAppliedEpoch) })
	replGauge("foss_repl_lag_checkpoints", "Epochs the leader has published past what this follower applied.",
		func(s repl.Stats) float64 { return float64(s.LagCheckpoints) })
	replCounter("foss_repl_swaps_applied_total", "Leader checkpoints hot-swapped into this follower.",
		func(s repl.Stats) uint64 { return s.AppliedSwaps })
	replCounter("foss_repl_fetch_errors_total", "Replication polls that failed (manifest, fetch, decode, or apply).",
		func(s repl.Stats) uint64 { return s.FetchErrors })

	w.Header().Set("Content-Type", promContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = e.WriteTo(w)
}
