package service

// The multi-tenant wire surface: one listener fronting a fleet of doctors.
// Every tenant-scoped endpoint is the single-tenant surface re-rooted under
// the tenant's prefix, served by that tenant's own HTTPServer (its loop,
// its serve-id ring, its counters):
//
//	POST /v1/t/{tenant}/optimize    — as /v1/optimize, on that tenant's shard
//	POST /v1/t/{tenant}/feedback    — as /v1/feedback
//	GET  /v1/t/{tenant}/stats       — as /v1/stats
//	POST /v1/t/{tenant}/checkpoint  — as /v1/checkpoint
//	POST /v1/t/{tenant}/catalog     — as /v1/catalog (DDL batch; GET reads)
//	GET  /v1/t/{tenant}/explain/{serve_id} — as /v1/explain/{serve_id}
//	GET  /v1/t/{tenant}/advisor     — as /v1/advisor
//	GET  /v1/t/{tenant}/metrics     — that tenant's scrape, tenant-labeled
//	GET  /v1/stats                  — aggregate roll-up over every tenant
//	GET  /metrics                   — aggregate scrape, one series per tenant
//	GET  /v1/tenants                — tenant list
//	POST /v1/tenants                — create a shard live (see WireTenantSpec)
//
// The registry behind the surface is an interface so this package stays
// below the shard router in the dependency order: internal/shard implements
// TenantRegistry over core systems; this file only routes.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"github.com/foss-db/foss/internal/fosserr"
)

// WireTenantSpec is the JSON body of POST /v1/tenants: the identity and
// generation parameters of a shard to create live. Zero fields inherit the
// registry's defaults.
type WireTenantSpec struct {
	Tenant   string  `json:"tenant"`
	Workload string  `json:"workload,omitempty"`
	Backend  string  `json:"backend,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
}

// TenantRegistry is the shard router as the wire surface sees it. Lookups
// fail with fosserr.ErrUnknownTenant (404) for absent tenants and
// fosserr.ErrLoopClosed (503) once the router is draining.
type TenantRegistry interface {
	// TenantServer returns the named tenant's HTTP surface.
	TenantServer(name string) (*HTTPServer, error)
	// TenantNames lists the live tenants in stable (sorted) order.
	TenantNames() []string
	// CreateTenant boots a new shard live — workload generation plus
	// training or a warm start, so expect seconds, not milliseconds — and
	// returns its HTTP surface. ctx cancels the boot (a disconnected client
	// or a draining server stops the training run instead of wasting it).
	// A duplicate name or an invalid spec is an error.
	CreateTenant(ctx context.Context, spec WireTenantSpec) (*HTTPServer, error)
}

// MultiHTTPServer is the http.Handler exposing a tenant registry. Safe for
// concurrent use.
type MultiHTTPServer struct {
	reg TenantRegistry
	mux *http.ServeMux
}

// NewMultiHTTPServer builds the fleet surface over a tenant registry.
func NewMultiHTTPServer(reg TenantRegistry) *MultiHTTPServer {
	s := &MultiHTTPServer{reg: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/t/", s.handleTenantScoped)
	s.mux.HandleFunc("/v1/stats", s.handleAggregateStats)
	s.mux.HandleFunc("/v1/tenants", s.handleTenants)
	s.mux.HandleFunc("/metrics", s.handleAggregateMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *MultiHTTPServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// tenantEndpoints is the allowlist of per-tenant paths; anything else under
// /v1/t/{tenant}/ is a 404 here rather than a confusing delegate miss.
var tenantEndpoints = map[string]bool{
	"optimize": true, "feedback": true, "stats": true, "checkpoint": true,
	"explain": true, "advisor": true, "metrics": true, "repl": true,
	"catalog": true,
}

// handleTenantScoped peels /v1/t/{tenant}/{endpoint}[/{rest}] and delegates
// to the tenant's own HTTPServer with the path re-rooted at
// /v1/{endpoint}[/{rest}] — the single-tenant handlers (body limits, strict
// parsing, serve-id ring) apply unchanged per tenant. Two special cases:
// explain keeps its serve_id suffix through the re-rooting, and metrics is
// rendered here so the tenant label lands on every series.
func (s *MultiHTTPServer) handleTenantScoped(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/t/")
	tenant, sub, ok := strings.Cut(rest, "/")
	endpoint := sub
	if i := strings.IndexByte(sub, '/'); i >= 0 {
		endpoint = sub[:i]
	}
	if !ok || tenant == "" || !tenantEndpoints[endpoint] {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown path %q (want /v1/t/{tenant}/{optimize|feedback|stats|checkpoint|catalog|explain|advisor|metrics})", r.URL.Path))
		return
	}
	ts, err := s.reg.TenantServer(tenant)
	if err != nil {
		writeRegistryErr(w, tenant, err)
		return
	}
	if endpoint == "metrics" {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "GET required")
			return
		}
		writeMetricsText(w, []scrapeRow{ts.scrape(tenant)})
		return
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/v1/" + sub
	ts.ServeHTTP(w, r2)
}

// handleAggregateMetrics scrapes the whole fleet on one page: every family
// appears once, with one series per tenant (plus the tier dimension on the
// tiered families). The zero-or-fully guarantee of the aggregate stats
// roll-up applies here too — a tenant mid-creation is not listed, a tenant
// that finished creating scrapes with all its series.
func (s *MultiHTTPServer) handleAggregateMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	var rows []scrapeRow
	for _, name := range s.reg.TenantNames() {
		ts, err := s.reg.TenantServer(name)
		if errors.Is(err, fosserr.ErrLoopClosed) {
			// Draining: refuse the scrape rather than serve a page that
			// reads as every counter collapsing to zero.
			writeRegistryErr(w, name, err)
			return
		}
		if err != nil {
			continue // dropped between listing and lookup
		}
		rows = append(rows, ts.scrape(name))
	}
	writeMetricsText(w, rows)
}

// aggregateStatsResponse is the fleet-wide /v1/stats body: the per-tenant
// snapshots plus totals summed across them.
type aggregateStatsResponse struct {
	Tenants map[string]statsResponse `json:"tenants"`
	Totals  aggregateTotals          `json:"totals"`
}

type aggregateTotals struct {
	Tenants     int    `json:"tenants"`
	Served      uint64 `json:"served"`
	Recorded    uint64 `json:"recorded"`
	Swaps       uint64 `json:"swaps"`
	Retrains    uint64 `json:"retrains"`
	Checkpoints uint64 `json:"checkpoints"`
	WALEntries  uint64 `json:"wal_entries"`
	CacheHits   uint64 `json:"cache_hits"`
	Tier0Hits   uint64 `json:"tier0_hits"`
	Tier1Hits   uint64 `json:"tier1_hits"`
	Promotions  uint64 `json:"tier_promotions"`
	Pending     int    `json:"pending_feedback"`
	Expired     uint64 `json:"expired_serve_ids"`
}

func (s *MultiHTTPServer) handleAggregateStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	out := aggregateStatsResponse{Tenants: map[string]statsResponse{}}
	for _, name := range s.reg.TenantNames() {
		ts, err := s.reg.TenantServer(name)
		if errors.Is(err, fosserr.ErrLoopClosed) {
			// The router is draining: every lookup will fail. An empty 200
			// would read as the fleet's counters collapsing to zero —
			// refuse like every other endpoint does.
			writeRegistryErr(w, name, err)
			return
		}
		if err != nil {
			continue // dropped between listing and lookup: skip, don't fail the roll-up
		}
		row := ts.statsSnapshot()
		out.Tenants[name] = row
		out.Totals.Tenants++
		out.Totals.Served += row.Stats.Served
		out.Totals.Recorded += row.Stats.Recorded
		out.Totals.Swaps += row.Stats.Swaps
		out.Totals.Retrains += row.Stats.Retrains
		out.Totals.Checkpoints += row.Stats.Checkpoints
		out.Totals.WALEntries += row.Stats.WALEntries
		out.Totals.CacheHits += row.Stats.CacheHits
		out.Totals.Tier0Hits += row.Stats.Tier0Hits
		out.Totals.Tier1Hits += row.Stats.Tier1Hits
		out.Totals.Promotions += row.Stats.Promotions
		out.Totals.Pending += row.Pending
		out.Totals.Expired += row.Expired
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *MultiHTTPServer) handleTenants(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{"tenants": s.reg.TenantNames()})
	case http.MethodPost:
		var spec WireTenantSpec
		if !decodeBody(w, r, &spec) {
			return
		}
		if spec.Tenant == "" {
			writeErr(w, http.StatusBadRequest, "tenant name required")
			return
		}
		ts, err := s.reg.CreateTenant(r.Context(), spec)
		if err != nil {
			writeRegistryErr(w, spec.Tenant, err)
			return
		}
		lp := ts.Loop()
		writeJSON(w, http.StatusCreated, map[string]any{
			"tenant":  spec.Tenant,
			"backend": lp.Active().BackendName(),
			"epoch":   lp.Epoch(),
		})
	default:
		writeErr(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}

// writeRegistryErr maps registry failures onto wire statuses: an unknown
// tenant is the client's path (404), a draining router refuses new work
// (503), an invalid spec is the client's body (400), a creation collision —
// duplicate name or a state dir another process holds — is a conflict
// (409), the rest are server faults.
func writeRegistryErr(w http.ResponseWriter, tenant string, err error) {
	switch {
	case errors.Is(err, fosserr.ErrUnknownTenant):
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown tenant %q", tenant))
	case errors.Is(err, fosserr.ErrLoopClosed):
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, fosserr.ErrStoreLocked):
		writeErr(w, http.StatusConflict, err.Error())
	case errors.Is(err, fosserr.ErrBadConfig), errors.Is(err, fosserr.ErrUnknownBackend), errors.Is(err, fosserr.ErrUnknownWorkload):
		writeErr(w, http.StatusBadRequest, err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, err.Error())
	}
}
