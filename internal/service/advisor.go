package service

// advisor.go — the async self-diagnosis advisor: a background analyst that
// watches the feedback stream and turns raw counters into findings an
// operator can act on. The shape follows the async-analyzer pattern: the
// serve/record path pays exactly one non-blocking channel send; everything
// else — windowing, thrash bookkeeping, finding emission — happens on the
// advisor's own goroutine, owned by the loop and drained by Close like a
// retrain.

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
)

// Finding kinds emitted by the advisor.
const (
	// FindingRegression: a sustained fraction of recent traffic ran slower
	// than the expert baseline by more than the regression ratio.
	FindingRegression = "regression"
	// FindingPlanThrash: one fingerprint keeps cycling through tier-0
	// promotion and demotion — its pinned plan is not stable under the
	// current workload.
	FindingPlanThrash = "plan-thrash"
	// FindingCooldownBlocked: the drift detector has been signalling drift
	// while the retrain cooldown suppressed the trigger, for many
	// consecutive records — the doctor knows it is behind and is not allowed
	// to catch up.
	FindingCooldownBlocked = "cooldown-blocked"
	// FindingSchemaChurn: a DDL apply invalidated tier-0 plan memory and the
	// hit rate stayed collapsed over the following observation window — the
	// workload's hot set is not re-earning its pins against the evolved
	// schema (a dropped index changed plan stability, or traffic shifted
	// with the schema change).
	FindingSchemaChurn = "schema-churn"
)

// AdvisorConfig tunes the async advisor. The zero value disables it.
type AdvisorConfig struct {
	// Enabled turns the advisor on.
	Enabled bool
	// Window is the number of recent records the regression analysis looks
	// at (default 64). A regression finding needs a full window.
	Window int
	// RegressionFrac is the fraction of the window that must regress before
	// a regression finding fires (default 0.10).
	RegressionFrac float64
	// RegressionRatio is the served-vs-expert latency ratio past which one
	// record counts as regressed (default 1.5).
	RegressionRatio float64
	// ThrashCycles is the number of tier-0 demotions of one fingerprint
	// (within one epoch) that counts as plan-memory thrash (default 2).
	ThrashCycles int
	// CooldownTurns is the number of consecutive cooldown-suppressed drift
	// signals that triggers a cooldown-blocked finding (default 8).
	CooldownTurns int
	// MaxFindings bounds the retained findings, oldest dropped first
	// (default 64).
	MaxFindings int
	// Depth is the intake channel's buffer; when the advisor falls this far
	// behind, further observations are dropped and counted (default 256).
	Depth int
}

func (c AdvisorConfig) withDefaults() AdvisorConfig {
	if c.Window < 1 {
		c.Window = 64
	}
	if c.RegressionFrac <= 0 {
		c.RegressionFrac = 0.10
	}
	if c.RegressionRatio <= 0 {
		c.RegressionRatio = 1.5
	}
	if c.ThrashCycles < 1 {
		c.ThrashCycles = 2
	}
	if c.CooldownTurns < 1 {
		c.CooldownTurns = 8
	}
	if c.MaxFindings < 1 {
		c.MaxFindings = 64
	}
	if c.Depth < 1 {
		c.Depth = 256
	}
	return c
}

// Finding is one structured advisor emission.
type Finding struct {
	// Kind is one of the Finding* constants.
	Kind string `json:"kind"`
	// Detail is the human-readable diagnosis.
	Detail string `json:"detail"`
	// Epoch is the model generation the triggering record was served by.
	Epoch uint64 `json:"epoch"`
	// Seq is the advisor-side ordinal of the triggering observation (1 = the
	// first record the advisor saw).
	Seq uint64 `json:"seq"`
	// Fingerprint and QueryID name the offending query for per-fingerprint
	// findings (plan-thrash); zero/empty otherwise.
	Fingerprint uint64 `json:"fingerprint,omitempty"`
	QueryID     string `json:"query_id,omitempty"`
	// Ratio is the measured fraction/ratio behind the finding (regression:
	// fraction of the window regressed).
	Ratio float64 `json:"ratio,omitempty"`
	// Count is the measured count behind the finding (regressed records,
	// demotion cycles, blocked turns).
	Count int `json:"count,omitempty"`
}

// advisorObs is what Record hands the advisor per ingested execution (and
// what ApplyDDL hands it as a schema-change marker, ddl=true).
type advisorObs struct {
	fp           uint64
	qid          string
	epoch        uint64
	ratio        float64 // served-vs-expert latency ratio (1.0 = neutral)
	promoted     bool
	demoted      bool
	driftBlocked bool // detector signalled drift but the cooldown suppressed it

	// Schema-evolution channel: ddl marks a catalog apply; every obs carries
	// the loop's cumulative tier-0 hit and serve counters so the advisor can
	// compare the hit rate before and after the marker without touching loop
	// state.
	ddl      bool
	catEpoch uint64
	t0Hits   uint64
	served   uint64
}

// advisor owns the analysis state. All fields below mu are touched only by
// the run goroutine (ingest); findings/emitted/dropped are the shared
// surface the HTTP handler reads.
type advisor struct {
	cfg AdvisorConfig
	ch  chan advisorObs

	dropped atomic.Uint64
	emitted atomic.Uint64

	mu       sync.Mutex
	findings []Finding

	// Analysis state, single-goroutine.
	seq        uint64
	window     []advisorObs // ring of the last cfg.Window observations
	wpos       int
	regLatched bool           // a regression finding is live; re-arm on recovery
	cycles     map[uint64]int // per-fingerprint demotion count this epoch
	blocked    int            // consecutive cooldown-suppressed drift signals
	lastEpoch  uint64

	// Schema-churn state: set by a ddl marker, resolved once a full Window of
	// serves has accumulated past it.
	ddlPending  bool
	ddlCatEpoch uint64
	ddlT0       uint64  // cumulative tier-0 hits at the marker
	ddlServed   uint64  // cumulative serves at the marker
	preT0Rate   float64 // tier-0 hit rate before the DDL landed
}

func newAdvisor(cfg AdvisorConfig) *advisor {
	cfg = cfg.withDefaults()
	return &advisor{
		cfg:    cfg,
		ch:     make(chan advisorObs, cfg.Depth),
		cycles: map[uint64]int{},
	}
}

// offer hands one observation to the advisor without ever blocking the
// feedback path; a full channel drops and counts.
func (a *advisor) offer(obs advisorObs) {
	select {
	case a.ch <- obs:
	default:
		a.dropped.Add(1)
	}
}

// run is the advisor goroutine: consume until stopped, then drain whatever
// Record already handed off and exit. The channel is never closed (offers
// may race the stop signal); the drain loop's default case bounds shutdown.
func (a *advisor) run(stop <-chan struct{}) {
	for {
		select {
		case obs := <-a.ch:
			a.ingest(obs)
		case <-stop:
			for {
				select {
				case obs := <-a.ch:
					a.ingest(obs)
				default:
					return
				}
			}
		}
	}
}

// ingest runs the analysis for one observation. Called only from the run
// goroutine (and synchronously by unit tests).
func (a *advisor) ingest(obs advisorObs) {
	a.seq++
	if obs.ddl {
		// Schema-change marker: remember the pre-DDL tier-0 hit rate and
		// start the post-DDL measurement. The marker itself carries no
		// execution, so it skips the regression/thrash analysis entirely.
		a.ddlPending = true
		a.ddlCatEpoch = obs.catEpoch
		a.ddlT0, a.ddlServed = obs.t0Hits, obs.served
		a.preT0Rate = 0
		if obs.served > 0 {
			a.preT0Rate = float64(obs.t0Hits) / float64(obs.served)
		}
		return
	}
	if a.ddlPending && obs.served >= a.ddlServed+uint64(a.cfg.Window) {
		post := float64(obs.t0Hits-a.ddlT0) / float64(obs.served-a.ddlServed)
		a.ddlPending = false
		// Fires only when tier-0 was pulling real weight before the DDL and
		// lost most of it after; a workload that never pinned much has
		// nothing to churn.
		if a.preT0Rate >= 0.2 && post < a.preT0Rate/4 {
			a.emit(Finding{
				Kind:  FindingSchemaChurn,
				Epoch: obs.epoch,
				Seq:   a.seq,
				Ratio: post,
				Count: int(obs.served - a.ddlServed),
				Detail: fmt.Sprintf(
					"tier-0 hit rate collapsed after catalog epoch %d: %.0f%% before the DDL, %.0f%% over the %d serves since — the hot set is not re-earning its pins against the evolved schema",
					a.ddlCatEpoch, a.preT0Rate*100, post*100, obs.served-a.ddlServed),
			})
		}
	}
	if obs.epoch != a.lastEpoch {
		// New model generation: the regression latch and the thrash/blocked
		// tallies describe the old model's behavior, not this one's.
		a.lastEpoch = obs.epoch
		a.regLatched = false
		a.blocked = 0
		clear(a.cycles)
	}

	// Regression: fraction of the last Window records past RegressionRatio.
	if len(a.window) < a.cfg.Window {
		a.window = append(a.window, obs)
	} else {
		a.window[a.wpos] = obs
		a.wpos = (a.wpos + 1) % a.cfg.Window
	}
	if len(a.window) == a.cfg.Window {
		regressed := 0
		for _, o := range a.window {
			if o.ratio > a.cfg.RegressionRatio {
				regressed++
			}
		}
		frac := float64(regressed) / float64(len(a.window))
		switch {
		case frac >= a.cfg.RegressionFrac && !a.regLatched:
			a.regLatched = true
			a.emit(Finding{
				Kind:  FindingRegression,
				Epoch: obs.epoch,
				Seq:   a.seq,
				Ratio: frac,
				Count: regressed,
				Detail: fmt.Sprintf(
					"%.0f%% of the last %d executions regressed past %.2fx the expert baseline since epoch %d",
					frac*100, len(a.window), a.cfg.RegressionRatio, obs.epoch),
			})
		case frac < a.cfg.RegressionFrac/2:
			// Re-arm only after the window clearly recovers, so a fraction
			// hovering at the threshold emits once, not per record.
			a.regLatched = false
		}
	}

	// Plan-memory thrash: repeated promote→demote cycles on one fingerprint.
	if obs.demoted {
		a.cycles[obs.fp]++
		if n := a.cycles[obs.fp]; n >= a.cfg.ThrashCycles {
			a.cycles[obs.fp] = 0
			a.emit(Finding{
				Kind:        FindingPlanThrash,
				Epoch:       obs.epoch,
				Seq:         a.seq,
				Fingerprint: obs.fp,
				QueryID:     obs.qid,
				Count:       n,
				Detail: fmt.Sprintf(
					"plan-memory thrash on fingerprint %016x (query %q): %d promote/demote cycles at epoch %d",
					obs.fp, obs.qid, n, obs.epoch),
			})
		}
	}

	// Cooldown starvation: the detector keeps firing, the cooldown keeps
	// suppressing the retrain.
	if obs.driftBlocked {
		a.blocked++
		if a.blocked >= a.cfg.CooldownTurns {
			n := a.blocked
			a.blocked = 0
			a.emit(Finding{
				Kind:  FindingCooldownBlocked,
				Epoch: obs.epoch,
				Seq:   a.seq,
				Count: n,
				Detail: fmt.Sprintf(
					"drift detector armed but retrain cooldown-blocked for %d consecutive records at epoch %d",
					n, obs.epoch),
			})
		}
	} else {
		a.blocked = 0
	}
}

// emit appends one finding, oldest-first bounded by MaxFindings.
func (a *advisor) emit(f Finding) {
	a.emitted.Add(1)
	a.mu.Lock()
	a.findings = append(a.findings, f)
	if over := len(a.findings) - a.cfg.MaxFindings; over > 0 {
		a.findings = append(a.findings[:0], a.findings[over:]...)
	}
	a.mu.Unlock()
}

// snapshot copies the retained findings, oldest first.
func (a *advisor) snapshot() []Finding {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Finding(nil), a.findings...)
}

// AdvisorEnabled reports whether the loop runs an advisor.
func (lp *Loop) AdvisorEnabled() bool { return lp.adv != nil }

// AdvisorFindings returns the advisor's retained findings, oldest first
// (nil when the advisor is disabled). Findings are emitted asynchronously:
// feedback recorded a moment ago may not have been analyzed yet.
func (lp *Loop) AdvisorFindings() []Finding {
	if lp.adv == nil {
		return nil
	}
	return lp.adv.snapshot()
}

// AdvisorCounters returns (emitted, dropped): findings emitted over the
// loop's lifetime (emission keeps counting past the MaxFindings retention
// bound) and observations dropped because the advisor fell behind.
func (lp *Loop) AdvisorCounters() (emitted, dropped uint64) {
	if lp.adv == nil {
		return 0, 0
	}
	return lp.adv.emitted.Load(), lp.adv.dropped.Load()
}

// advisorResponse is the GET /v1/advisor body.
type advisorResponse struct {
	Enabled  bool      `json:"enabled"`
	Findings []Finding `json:"findings"`
	Emitted  uint64    `json:"emitted"`
	Dropped  uint64    `json:"dropped"`
}

// handleAdvisor serves the advisor's findings. A disabled advisor answers
// 200 with enabled:false — scraping it is never an error.
func (s *HTTPServer) handleAdvisor(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	findings := s.lp.AdvisorFindings()
	if findings == nil {
		findings = []Finding{}
	}
	emitted, dropped := s.lp.AdvisorCounters()
	writeJSON(w, http.StatusOK, advisorResponse{
		Enabled:  s.lp.AdvisorEnabled(),
		Findings: findings,
		Emitted:  emitted,
		Dropped:  dropped,
	})
}
