package service

// Regression suite for the shutdown path: before Loop.Close existed, a
// background retrain (service.go's triggerRetrain goroutine) and the
// periodic-checkpoint goroutine could outlive the caller — fossd's HTTP
// shutdown stopped the listener but never drained the loop, so an in-flight
// retrain raced process exit and wrote nothing. These tests pin the
// contract: Close stops intake, drains (or cancels) the background work,
// leaves no goroutine behind, and lands a durable final checkpoint.

import (
	"context"
	"errors"
	goruntime "runtime"
	"testing"
	"time"

	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/store"
)

// waitGoroutines polls until the live goroutine count drops back to at most
// base (plus the runtime's own background noise), failing after a deadline.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		goruntime.GC() // nudge finalizer/timer goroutines to settle
		n := goruntime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked across Close: %d > %d\n%s",
				n, base, buf[:goruntime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// driveRetrain records enough regressed executions to trip the detector and
// start a background retrain.
func driveRetrain(t *testing.T, lp *Loop) {
	t.Helper()
	for i := int64(0); i < 4; i++ {
		res, err := lp.Serve(context.Background(), fq(i))
		if err != nil {
			t.Fatal(err)
		}
		lp.Record(fq(i), res.Eval, 100) // expert runs at 10 → ratio 10, drift
	}
}

// TestCloseDrainsBackgroundRetrain: a Close issued while the background
// retrain sleeps inside TrainOn waits it out, completes the hot-swap, takes
// a durable final checkpoint, refuses post-close traffic, and leaves no
// goroutine behind. Close is idempotent.
func TestCloseDrainsBackgroundRetrain(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	base := goruntime.NumGoroutine()

	cfg := syncConfig()
	cfg.Background = true
	cfg.Store = st
	blue, green := newFake("blue"), newFake("green")
	green.trainDelay = 100 * time.Millisecond
	lp := New(cfg, blue, green, nil)

	driveRetrain(t, lp)
	if !lp.Stats().Retraining {
		t.Fatal("background retrain did not start; the drain would prove nothing")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := lp.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}

	// The retrain drained to completion: trained, swapped, mirrored.
	if st := lp.Stats(); st.Swaps != 1 || st.RetrainErrors != 0 || !st.Closed {
		t.Fatalf("drain left the retrain incomplete: %+v", st)
	}
	if green.trains.Load() != 1 {
		t.Fatalf("standby trained %d times, want 1", green.trains.Load())
	}

	// Intake is stopped.
	if _, err := lp.Serve(context.Background(), fq(99)); !errors.Is(err, fosserr.ErrLoopClosed) {
		t.Fatalf("post-close Serve error = %v, want ErrLoopClosed", err)
	}
	if _, err := lp.ServeBatch(context.Background(), []*query.Query{fq(99)}); !errors.Is(err, fosserr.ErrLoopClosed) {
		t.Fatalf("post-close ServeBatch error = %v, want ErrLoopClosed", err)
	}
	sizeBefore := lp.Active().Buffer().Size()
	pe, _, _, _ := blue.OptimizeEvalContext(context.Background(), fq(5))
	if lp.Record(fq(5), pe, 10) {
		t.Fatal("post-close Record claimed the feedback was ingested")
	}
	if lp.Active().Buffer().Size() != sizeBefore {
		t.Fatal("post-close Record still ingested feedback")
	}

	// The final checkpoint is durable and images the post-swap generation.
	rec, err := st.Recover()
	if err != nil || rec == nil {
		t.Fatalf("no durable final checkpoint after Close: rec=%v err=%v", rec, err)
	}
	if rec.Checkpoint.Epoch != 2 {
		t.Fatalf("final checkpoint epoch %d, want the post-swap 2", rec.Checkpoint.Epoch)
	}

	// Idempotent.
	if err := lp.Close(ctx); err != nil {
		t.Fatalf("second close: %v", err)
	}
	waitGoroutines(t, base)
}

// TestCloseCancelsStuckRetrain: when the drain budget expires before the
// retrain finishes, Close cancels the retrain's context instead of hanging,
// still takes the final checkpoint, and still leaves no goroutine behind.
func TestCloseCancelsStuckRetrain(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	base := goruntime.NumGoroutine()

	cfg := syncConfig()
	cfg.Background = true
	cfg.Store = st
	blue, green := newFake("blue"), newFake("green")
	green.trainDelay = time.Hour // a retrain that would outlive any deploy
	lp := New(cfg, blue, green, nil)

	driveRetrain(t, lp)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := lp.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("close took %v against a stuck retrain; the cancel path did not fire", elapsed)
	}
	if st := lp.Stats(); st.RetrainErrors != 1 || st.Swaps != 0 {
		t.Fatalf("canceled retrain should count one error and no swap: %+v", st)
	}
	if rec, err := st.Recover(); err != nil || rec == nil {
		t.Fatalf("no final checkpoint after canceled drain: rec=%v err=%v", rec, err)
	}
	waitGoroutines(t, base)
}

// TestCloseRaceWithTraffic: Close racing live Serve/Record traffic under
// -race neither panics nor leaks; every request either completes or fails
// with ErrLoopClosed.
func TestCloseRaceWithTraffic(t *testing.T) {
	base := goruntime.NumGoroutine()
	cfg := syncConfig()
	cfg.Background = true
	blue, green := newFake("blue"), newFake("green")
	lp := New(cfg, blue, green, nil)

	stop := make(chan struct{})
	donech := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { donech <- struct{}{} }()
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := lp.Serve(context.Background(), fq(int64(g)*1000+i))
				if err != nil {
					if !errors.Is(err, fosserr.ErrLoopClosed) {
						t.Errorf("serve: %v", err)
					}
					return
				}
				lp.Record(fq(int64(g)*1000+i), res.Eval, 100)
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := lp.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	close(stop)
	for g := 0; g < 4; g++ {
		<-donech
	}
	waitGoroutines(t, base)
}
