package service

import "sync"

// DetectorConfig tunes the drift detector.
type DetectorConfig struct {
	// Window is the rolling window length in recorded executions.
	Window int
	// Threshold is the mean regression ratio (observed latency / expert
	// latency) above which the window signals drift. 1.0 means FOSS matches
	// the traditional optimizer; sustained means above Threshold say the
	// serving model is prescribing worse plans than doing nothing.
	Threshold float64
	// MinSamples gates drift until the window has seen this many records.
	MinSamples int
	// NoveltyFrac signals drift when this fraction of the window's queries
	// carry fingerprints never recorded before (template-mix or
	// novel-template shifts arrive as unseen shapes well before they show up
	// as latency regressions). <= 0 disables the novelty signal.
	NoveltyFrac float64
}

// Signal is one detector observation outcome.
type Signal struct {
	Mean      float64 // rolling mean regression ratio
	NovelFrac float64 // fraction of the window with unseen fingerprints
	Drift     bool
	Reason    string // "regression" or "novelty" when Drift is set
}

// Detector is the rolling regression-vs-expert drift monitor. It keeps a
// fixed window of (ratio, novel) observations plus an all-time fingerprint
// set; Observe is O(1) and safe for concurrent use.
type Detector struct {
	cfg DetectorConfig

	mu     sync.Mutex
	ratios []float64
	novels []bool
	idx, n int
	sum    float64
	novel  int
	seen   map[uint64]bool
}

// NewDetector creates a detector; known pre-seeds the fingerprint set (the
// training distribution is not novel).
func NewDetector(cfg DetectorConfig, known []uint64) *Detector {
	if cfg.Window < 1 {
		cfg.Window = 32
	}
	if cfg.MinSamples < 1 {
		cfg.MinSamples = cfg.Window / 2
	}
	if cfg.MinSamples > cfg.Window {
		cfg.MinSamples = cfg.Window
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 1.15
	}
	d := &Detector{
		cfg:    cfg,
		ratios: make([]float64, cfg.Window),
		novels: make([]bool, cfg.Window),
		seen:   make(map[uint64]bool, len(known)),
	}
	for _, fp := range known {
		d.seen[fp] = true
	}
	return d
}

// Observe records one executed query: its fingerprint and the regression
// ratio observed/expert. It returns the window state and whether the window
// now signals drift.
func (d *Detector) Observe(fingerprint uint64, ratio float64) Signal {
	d.mu.Lock()
	defer d.mu.Unlock()

	isNovel := !d.seen[fingerprint]
	d.seen[fingerprint] = true

	if d.n == d.cfg.Window {
		// evict the slot we are about to overwrite
		d.sum -= d.ratios[d.idx]
		if d.novels[d.idx] {
			d.novel--
		}
	} else {
		d.n++
	}
	d.ratios[d.idx] = ratio
	d.novels[d.idx] = isNovel
	d.sum += ratio
	if isNovel {
		d.novel++
	}
	d.idx = (d.idx + 1) % d.cfg.Window

	sig := Signal{
		Mean:      d.sum / float64(d.n),
		NovelFrac: float64(d.novel) / float64(d.n),
	}
	if d.n >= d.cfg.MinSamples {
		switch {
		case sig.Mean > d.cfg.Threshold:
			sig.Drift, sig.Reason = true, "regression"
		case d.cfg.NoveltyFrac > 0 && sig.NovelFrac >= d.cfg.NoveltyFrac:
			sig.Drift, sig.Reason = true, "novelty"
		}
	}
	return sig
}

// Reset clears the rolling window (the fingerprint set is kept: a query seen
// before a retrain is still not novel after it). Called after every
// hot-swap so the fresh model starts with a clean slate.
func (d *Detector) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.idx, d.n, d.sum, d.novel = 0, 0, 0, 0
	for i := range d.ratios {
		d.ratios[i] = 0
		d.novels[i] = false
	}
}

// WindowState snapshots the current rolling means without observing.
func (d *Detector) WindowState() Signal {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n == 0 {
		return Signal{}
	}
	return Signal{
		Mean:      d.sum / float64(d.n),
		NovelFrac: float64(d.novel) / float64(d.n),
	}
}
