package service

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/repl"
	"github.com/foss-db/foss/internal/store"
)

// newFollowerFixture builds the HTTP surface over a follower loop (never
// trains, no store) with the standard q{v} resolver.
func newFollowerFixture(t *testing.T, opts HTTPOptions) (*httptest.Server, *Loop) {
	t.Helper()
	cfg := syncConfig()
	cfg.Detector.Threshold = 100
	cfg.Follower = true
	blue, green := newFake("blue"), newFake("green")
	lp := New(cfg, blue, green, nil)
	opts.Follower = true
	if opts.Resolve == nil {
		opts.Resolve = func(id string) *query.Query {
			v, err := strconv.ParseInt(strings.TrimPrefix(id, "q"), 10, 64)
			if err != nil || !strings.HasPrefix(id, "q") {
				return nil
			}
			return fq(v)
		}
	}
	h := NewHTTPServer(lp, opts)
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, lp
}

// TestFollowerWriteEndpointsRefuse: every write surface on a follower
// answers 403 with the leader's address in the body; read surfaces serve.
func TestFollowerWriteEndpointsRefuse(t *testing.T) {
	ts, _ := newFollowerFixture(t, HTTPOptions{LeaderAddr: "http://leader:8475"})

	writes := []struct{ path, body string }{
		{"/v1/feedback", `{"serve_id": "s1", "latency_ms": 5}`},
		{"/v1/checkpoint", `{}`},
		{"/v1/optimize", `{"query_id": "q1", "execute": true}`},
	}
	for _, c := range writes {
		code, out := postJSON(t, ts.URL+c.path, c.body)
		if code != http.StatusForbidden {
			t.Fatalf("%s on follower: %d %v", c.path, code, out)
		}
		if out["leader"] != "http://leader:8475" {
			t.Fatalf("%s refusal names no leader: %v", c.path, out)
		}
	}
	// A follower cannot be a replication source either (it has no store).
	for _, path := range []string{"/v1/repl/manifest", "/v1/repl/checkpoint/x"} {
		if code, out := getJSON(t, ts.URL+path); code != http.StatusForbidden {
			t.Fatalf("%s on follower: %d %v", path, code, out)
		}
	}

	// Reads serve normally: plain optimize, stats, explain, metrics.
	code, out := postJSON(t, ts.URL+"/v1/optimize", `{"query_id": "q1"}`)
	if code != http.StatusOK {
		t.Fatalf("follower optimize: %d %v", code, out)
	}
	serveID, _ := out["serve_id"].(string)
	if code, _ := getJSON(t, ts.URL+"/v1/stats"); code != http.StatusOK {
		t.Fatalf("follower stats: %d", code)
	}
	if code, _ := getJSON(t, ts.URL+"/v1/explain/"+serveID); code != http.StatusOK {
		t.Fatalf("follower explain: %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("follower metrics: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()
}

// TestFollowerFeedbackForwarding: feedback on a follower with a forwarder
// is relayed to the leader in durable identity form and recorded there; a
// dead leader turns the relay into a 502.
func TestFollowerFeedbackForwarding(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100
	leaderTS, _, _ := newWireFixture(t, cfg)

	ts, _ := newFollowerFixture(t, HTTPOptions{
		LeaderAddr:      leaderTS.URL,
		ForwardFeedback: NewFeedbackForwarder(leaderTS.URL + "/v1"),
	})

	code, out := postJSON(t, ts.URL+"/v1/optimize", `{"query_id": "q7"}`)
	if code != http.StatusOK {
		t.Fatalf("optimize: %d %v", code, out)
	}
	serveID := out["serve_id"].(string)
	code, out = postJSON(t, ts.URL+"/v1/feedback", `{"serve_id": "`+serveID+`", "latency_ms": 12.5}`)
	if code != http.StatusOK || out["forwarded"] != true {
		t.Fatalf("forwarded feedback: %d %v", code, out)
	}
	if _, st := getJSON(t, leaderTS.URL+"/v1/stats"); st["stats"].(map[string]any)["Recorded"] != float64(1) {
		t.Fatalf("leader did not record forwarded feedback: %v", st["stats"])
	}
	// Duplicate feedback for the same serve stays a local 404 — the slot
	// was consumed by the successful forward.
	if code, _ := postJSON(t, ts.URL+"/v1/feedback", `{"serve_id": "`+serveID+`", "latency_ms": 12.5}`); code != http.StatusNotFound {
		t.Fatalf("duplicate forwarded feedback: %d", code)
	}

	// Leader gone: the relay fails loudly instead of pretending to record.
	code, out = postJSON(t, ts.URL+"/v1/optimize", `{"query_id": "q8"}`)
	if code != http.StatusOK {
		t.Fatalf("optimize: %d %v", code, out)
	}
	serveID = out["serve_id"].(string)
	leaderTS.Close()
	if code, out = postJSON(t, ts.URL+"/v1/feedback", `{"serve_id": "`+serveID+`", "latency_ms": 3}`); code != http.StatusBadGateway {
		t.Fatalf("feedback with dead leader: %d %v", code, out)
	}
}

// TestLeaderReplEndpoints: the replication source surface — manifest 412
// without a store, 404 before the first checkpoint, then manifest +
// decodable blob; traversal names are refused.
func TestLeaderReplEndpoints(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100
	ts, _, _ := newWireFixture(t, cfg)
	if code, _ := getJSON(t, ts.URL+"/v1/repl/manifest"); code != http.StatusPreconditionFailed {
		t.Fatalf("manifest without store: %d", code)
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cfg.Store = st
	ts2, _, _ := newWireFixture(t, cfg)
	if code, _ := getJSON(t, ts2.URL+"/v1/repl/manifest"); code != http.StatusNotFound {
		t.Fatalf("manifest before first checkpoint: %d", code)
	}
	if code, out := postJSON(t, ts2.URL+"/v1/checkpoint", `{}`); code != http.StatusOK {
		t.Fatalf("checkpoint: %d %v", code, out)
	}
	code, m := getJSON(t, ts2.URL+"/v1/repl/manifest")
	if code != http.StatusOK {
		t.Fatalf("manifest: %d %v", code, m)
	}
	name, _ := m["checkpoint"].(string)
	resp, err := http.Get(ts2.URL + "/v1/repl/checkpoint/" + name)
	if err != nil {
		t.Fatal(err)
	}
	blob := make([]byte, 0)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		blob = append(blob, buf[:n]...)
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint fetch: %d %s", resp.StatusCode, blob)
	}
	if ck, backend, err := store.DecodeCheckpoint(blob); err != nil || backend != "fake" || ck.Epoch == 0 {
		t.Fatalf("fetched blob does not decode: err=%v backend=%q", err, backend)
	}
	// ("../MANIFEST" traversal is covered at the source/name-validation
	// layer; http.Get normalizes dot-segments before they reach the server.)
	for _, bad := range []string{"MANIFEST", "nope.snap", "ckpt-1-2.snap"} {
		if code, _ := getJSON(t, ts2.URL+"/v1/repl/checkpoint/"+bad); code != http.StatusNotFound {
			t.Fatalf("bad name %q: %d", bad, code)
		}
	}
}

// TestApplyCheckpoint: a newer-generation checkpoint hot-swaps into the
// loop (epoch adopted, swap counted, both replicas converge); stale and
// same-epoch checkpoints are no-ops.
func TestApplyCheckpoint(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100
	cfg.Follower = true
	blue, green := newFake("blue"), newFake("green")
	lp := New(cfg, blue, green, nil)

	if err := lp.ApplyCheckpoint(store.Checkpoint{Model: []byte("g5"), Epoch: 5, WALSeq: 50}); err != nil {
		t.Fatal(err)
	}
	if lp.Epoch() != 5 {
		t.Fatalf("epoch = %d, want 5", lp.Epoch())
	}
	if lp.Stats().Swaps != 1 {
		t.Fatalf("swaps = %d", lp.Stats().Swaps)
	}
	// Both replicas loaded the image (standby mirrored after the swap).
	if blue.loads.Load() == 0 || green.loads.Load() == 0 {
		t.Fatalf("loads: blue=%d green=%d", blue.loads.Load(), green.loads.Load())
	}

	for _, stale := range []uint64{5, 4} {
		if err := lp.ApplyCheckpoint(store.Checkpoint{Model: []byte("old"), Epoch: stale}); err != nil {
			t.Fatalf("stale epoch %d: %v", stale, err)
		}
	}
	if lp.Epoch() != 5 || lp.Stats().Swaps != 1 {
		t.Fatalf("stale apply moved the loop: epoch=%d swaps=%d", lp.Epoch(), lp.Stats().Swaps)
	}
}

// TestFollowerNeverRetrains: drift that would trigger a retrain on a
// leader is ignored on a follower — its model moves only by checkpoint.
func TestFollowerNeverRetrains(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector = DetectorConfig{Window: 2, Threshold: 1.05, MinSamples: 2, NoveltyFrac: 0}
	cfg.Follower = true
	blue, green := newFake("blue"), newFake("green")
	lp := New(cfg, blue, green, nil)

	for i := int64(0); i < 8; i++ {
		res, err := lp.Serve(t.Context(), fq(i))
		if err != nil {
			t.Fatal(err)
		}
		// Ever-worse latencies: guaranteed drift pressure.
		lp.Record(fq(i), res.Eval, float64(100*(i+1)))
	}
	if n := blue.trains.Load() + green.trains.Load(); n != 0 || lp.Stats().Retrains != 0 {
		t.Fatalf("follower retrained: trains=%d stats=%+v", n, lp.Stats())
	}
}

// TestMetricsReplFamilies: a server with ReplStats exposes the replication
// gauges; one without does not.
func TestMetricsReplFamilies(t *testing.T) {
	ts, _ := newFollowerFixture(t, HTTPOptions{
		LeaderAddr: "http://leader:8475",
		ReplStats: func() repl.Stats {
			return repl.Stats{LastAppliedEpoch: 7, LastAppliedWALSeq: 42, LagCheckpoints: 1, AppliedSwaps: 3, FetchErrors: 2}
		},
	})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	text := sb.String()
	for _, want := range []string{
		"foss_repl_last_applied_walseq 42",
		"foss_repl_last_applied_epoch 7",
		"foss_repl_lag_checkpoints 1",
		"foss_repl_swaps_applied_total 3",
		"foss_repl_fetch_errors_total 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}

	// No ReplStats (a leader): families may appear, series must not.
	cfg := syncConfig()
	cfg.Detector.Threshold = 100
	ts2, _, _ := newWireFixture(t, cfg)
	resp2, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	for {
		n, err := resp2.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	resp2.Body.Close()
	if strings.Contains(sb.String(), "foss_repl_last_applied_walseq 0") {
		t.Fatalf("leader scrape carries repl series:\n%s", sb.String())
	}
}
