package service

// Advisor emission tests: ingest() is driven synchronously with synthetic
// observation streams, so every finding kind — regression (with its latch),
// plan-thrash, cooldown-blocked — is pinned deterministically. The wire test
// at the bottom covers the async path end to end: real traffic through the
// loop, findings surfacing on GET /v1/advisor.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/foss-db/foss/internal/query"
)

// TestAdvisorRegressionLatch: a regression finding fires once the window
// fills and the regressed fraction crosses the threshold, stays latched while
// the fraction hovers, and re-arms only after clear recovery.
func TestAdvisorRegressionLatch(t *testing.T) {
	a := newAdvisor(AdvisorConfig{Enabled: true, Window: 4, RegressionFrac: 0.5, RegressionRatio: 1.5})
	obs := func(ratio float64) { a.ingest(advisorObs{epoch: 1, ratio: ratio}) }

	obs(1)
	obs(1)
	obs(1)
	if got := a.snapshot(); len(got) != 0 {
		t.Fatalf("finding before the window filled: %+v", got)
	}
	obs(10) // window full: 1/4 regressed, below the 0.5 threshold
	if got := a.snapshot(); len(got) != 0 {
		t.Fatalf("finding below RegressionFrac: %+v", got)
	}
	obs(10) // 2/4 regressed → fire
	got := a.snapshot()
	if len(got) != 1 || got[0].Kind != FindingRegression {
		t.Fatalf("findings = %+v, want one regression", got)
	}
	if got[0].Count != 2 || got[0].Ratio != 0.5 || got[0].Epoch != 1 {
		t.Fatalf("regression finding fields wrong: %+v", got[0])
	}
	// The window keeps regressing: the latch holds, no re-emission per record.
	obs(10)
	obs(10)
	if got := a.snapshot(); len(got) != 1 {
		t.Fatalf("latched regression re-emitted: %+v", got)
	}
	// Recovery below RegressionFrac/2 re-arms the latch...
	obs(1)
	obs(1)
	obs(1)
	obs(1)
	if got := a.snapshot(); len(got) != 1 {
		t.Fatalf("recovery emitted spuriously: %+v", got)
	}
	// ...so the next sustained regression fires a second finding.
	obs(10)
	obs(10)
	if got := a.snapshot(); len(got) != 2 {
		t.Fatalf("re-armed regression did not fire: %+v", got)
	}
}

// TestAdvisorPlanThrash: repeated demotions of one fingerprint fire a thrash
// finding naming it; other fingerprints' demotions don't pool together, and
// emission resets that fingerprint's cycle count.
func TestAdvisorPlanThrash(t *testing.T) {
	a := newAdvisor(AdvisorConfig{Enabled: true, ThrashCycles: 2})
	a.ingest(advisorObs{epoch: 1, fp: 7, qid: "q7", demoted: true})
	a.ingest(advisorObs{epoch: 1, fp: 8, qid: "q8", demoted: true}) // different fp: no pooling
	if got := a.snapshot(); len(got) != 0 {
		t.Fatalf("thrash before ThrashCycles: %+v", got)
	}
	a.ingest(advisorObs{epoch: 1, fp: 7, qid: "q7", demoted: true})
	got := a.snapshot()
	if len(got) != 1 || got[0].Kind != FindingPlanThrash {
		t.Fatalf("findings = %+v, want one plan-thrash", got)
	}
	if got[0].Fingerprint != 7 || got[0].QueryID != "q7" || got[0].Count != 2 {
		t.Fatalf("thrash finding fields wrong: %+v", got[0])
	}
	// Emission reset the count: one more demotion is not enough again.
	a.ingest(advisorObs{epoch: 1, fp: 7, qid: "q7", demoted: true})
	if got := a.snapshot(); len(got) != 1 {
		t.Fatalf("thrash count did not reset on emission: %+v", got)
	}
}

// TestAdvisorCooldownBlocked: only a consecutive streak of cooldown-
// suppressed drift signals fires; any unblocked record resets it.
func TestAdvisorCooldownBlocked(t *testing.T) {
	a := newAdvisor(AdvisorConfig{Enabled: true, CooldownTurns: 3})
	blocked := func(b bool) { a.ingest(advisorObs{epoch: 1, driftBlocked: b}) }
	blocked(true)
	blocked(true)
	blocked(false) // streak broken
	blocked(true)
	blocked(true)
	if got := a.snapshot(); len(got) != 0 {
		t.Fatalf("broken streak fired: %+v", got)
	}
	blocked(true)
	got := a.snapshot()
	if len(got) != 1 || got[0].Kind != FindingCooldownBlocked || got[0].Count != 3 {
		t.Fatalf("findings = %+v, want one cooldown-blocked with count 3", got)
	}
}

// TestAdvisorEpochReset: a hot-swap (epoch change) resets the regression
// latch and the per-fingerprint thrash tallies — the old model's pathology
// must not carry into the new model's record.
func TestAdvisorEpochReset(t *testing.T) {
	a := newAdvisor(AdvisorConfig{Enabled: true, Window: 2, RegressionFrac: 0.5, RegressionRatio: 1.5, ThrashCycles: 2})
	a.ingest(advisorObs{epoch: 1, ratio: 10})
	a.ingest(advisorObs{epoch: 1, ratio: 10, fp: 7, demoted: true})
	if got := a.snapshot(); len(got) != 1 || got[0].Kind != FindingRegression {
		t.Fatalf("setup: want one latched regression, got %+v", got)
	}
	// Epoch bump: the latch clears, so the still-regressing window fires a
	// fresh finding attributed to the new epoch.
	a.ingest(advisorObs{epoch: 2, ratio: 10})
	got := a.snapshot()
	if len(got) != 2 || got[1].Epoch != 2 {
		t.Fatalf("epoch change did not re-arm the latch: %+v", got)
	}
	// The thrash tally restarted: one pre-swap demotion plus one post-swap
	// demotion must not add up to ThrashCycles.
	a.ingest(advisorObs{epoch: 2, ratio: 1, fp: 7, demoted: true})
	for _, f := range a.snapshot() {
		if f.Kind == FindingPlanThrash {
			t.Fatalf("thrash cycles pooled across epochs: %+v", f)
		}
	}
}

// TestAdvisorBackpressureAndRetention: offers past the channel depth drop
// and count; retained findings are FIFO-bounded while the emitted counter
// keeps the lifetime total.
func TestAdvisorBackpressureAndRetention(t *testing.T) {
	a := newAdvisor(AdvisorConfig{Enabled: true, Depth: 1})
	a.offer(advisorObs{})
	a.offer(advisorObs{})
	a.offer(advisorObs{})
	if got := a.dropped.Load(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}

	b := newAdvisor(AdvisorConfig{Enabled: true, ThrashCycles: 1, MaxFindings: 2})
	for fp := uint64(1); fp <= 3; fp++ {
		b.ingest(advisorObs{epoch: 1, fp: fp, demoted: true})
	}
	got := b.snapshot()
	if len(got) != 2 || got[0].Fingerprint != 2 || got[1].Fingerprint != 3 {
		t.Fatalf("retention not FIFO-bounded at 2: %+v", got)
	}
	if b.emitted.Load() != 3 {
		t.Fatalf("emitted = %d, want the lifetime 3", b.emitted.Load())
	}
}

// TestWaitReturnsWithAdvisorEnabled: Wait drains transient retrain work, not
// the loop-lifetime advisor goroutine — on a quiet loop with the advisor on,
// Wait must return immediately instead of blocking until Close (the fossd
// -online hang: the stream drained, then Wait deadlocked on the advisor).
func TestWaitReturnsWithAdvisorEnabled(t *testing.T) {
	cfg := syncConfig()
	cfg.Advisor = AdvisorConfig{Enabled: true, Window: 4}
	lp := New(cfg, newFake("blue"), newFake("green"), nil)
	t.Cleanup(func() { _ = lp.Close(context.Background()) })

	done := make(chan struct{})
	go func() { lp.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait blocked on the advisor goroutine")
	}
}

// TestHTTPAdvisorEndpoint drives the async path end to end: regressing
// traffic through the loop, the advisor goroutine analyzing off the record
// path, findings surfacing on GET /v1/advisor. A loop without an advisor
// answers 200 with enabled:false.
func TestHTTPAdvisorEndpoint(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100 // never drift: epoch stays 1
	cfg.Advisor = AdvisorConfig{Enabled: true, Window: 2, RegressionFrac: 0.5, RegressionRatio: 1.5}
	blue, green := newFake("blue"), newFake("green")
	lp := New(cfg, blue, green, nil)
	t.Cleanup(func() { _ = lp.Close(context.Background()) })
	h := NewHTTPServer(lp, HTTPOptions{Resolve: func(id string) *query.Query {
		v, err := strconv.ParseInt(strings.TrimPrefix(id, "q"), 10, 64)
		if err != nil {
			return nil
		}
		return fq(v)
	}})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	code, out := getJSON(t, ts.URL+"/v1/advisor")
	if code != http.StatusOK || out["enabled"] != true {
		t.Fatalf("advisor before traffic: %d %v", code, out)
	}
	if fs, _ := out["findings"].([]any); len(fs) != 0 {
		t.Fatalf("findings before traffic: %v", out)
	}

	// Two executions at 10x the expert baseline fill the window regressed.
	for i := 1; i <= 2; i++ {
		_, row := postJSON(t, ts.URL+"/v1/optimize", `{"query_id": "q`+strconv.Itoa(i)+`"}`)
		sid := row["serve_id"].(string)
		if code, fb := postJSON(t, ts.URL+"/v1/feedback", `{"serve_id": "`+sid+`", "latency_ms": 100}`); code != http.StatusOK {
			t.Fatalf("feedback: %d %v", code, fb)
		}
	}
	// The analysis is asynchronous: poll until the finding lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, out = getJSON(t, ts.URL+"/v1/advisor")
		if fs, _ := out["findings"].([]any); len(fs) > 0 {
			f := fs[0].(map[string]any)
			if f["kind"] != FindingRegression || f["epoch"] != float64(1) {
				t.Fatalf("unexpected finding %v", f)
			}
			if out["emitted"].(float64) < 1 {
				t.Fatalf("emitted counter lags findings: %v", out)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no finding after regressing traffic: %v", out)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Disabled advisor: still a 200, explicitly not enabled.
	cfg2 := syncConfig()
	cfg2.Detector.Threshold = 100
	ts2, _, _ := newWireFixture(t, cfg2)
	code, out = getJSON(t, ts2.URL+"/v1/advisor")
	if code != http.StatusOK || out["enabled"] != false {
		t.Fatalf("disabled advisor: %d %v", code, out)
	}
}
