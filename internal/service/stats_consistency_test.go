package service

// The torn-read regression suite for Stats/scrape snapshots: a scraper
// running concurrently with serve/record traffic must never observe an
// internally inconsistent snapshot. The counters are independent atomics, so
// consistency is an ordering discipline — writers bump the superordinate
// counter first (served before cache/tier hits, promotions before demotions,
// WAL entries before recorded) and observe the histogram last; readers load
// in the opposite order. Run with -race: this test is also the data-race
// soak for the scrape path.

import (
	"context"
	"sync"
	"testing"

	"github.com/foss-db/foss/internal/store"
	"github.com/foss-db/foss/internal/tier"
)

// TestStatsConsistentUnderTraffic hammers a tiered, journaled loop from
// writer goroutines while a scraper asserts every cross-counter invariant on
// every snapshot, then checks exact equality once traffic quiesces.
func TestStatsConsistentUnderTraffic(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cfg := syncConfig()
	cfg.Detector.Threshold = 1e12 // never drift: no retrain noise
	cfg.Store = st
	cfg.Tier = tier.Config{Memory: true, PromoteAfter: 1, EscalateRatio: 1.5}
	blue, green := newFake("blue"), newFake("green")
	lp := New(cfg, blue, green, nil)

	const writers, turns = 4, 50
	var wg sync.WaitGroup
	done := make(chan struct{})
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < turns; i++ {
				// A handful of shared fingerprints so pins promote, repeat
				// serves hit tier 0, and regressions demote — every tier
				// counter moves.
				q := fq(int64(g*4 + i%4))
				res, err := lp.Serve(context.Background(), q)
				if err != nil {
					t.Error(err)
					return
				}
				lat := 5.0 // beats the expert's 10 → promotion pressure
				if i%5 == 4 {
					lat = 100 // regression → demotion pressure
				}
				lp.Record(q, res.Eval, lat)
			}
		}(g)
	}
	go func() { wg.Wait(); close(done) }()

	check := func(when string) {
		// Snapshot order mirrors the scrape path: histograms BEFORE stats.
		hist := lp.ServeHistograms()
		s := lp.Stats()
		if s.CacheHits > s.Served {
			t.Errorf("%s: CacheHits %d > Served %d", when, s.CacheHits, s.Served)
		}
		if sum := s.Tier0Hits + s.Tier1Hits + s.Tier2Serves; sum > s.Served {
			t.Errorf("%s: tier hits %d > Served %d", when, sum, s.Served)
		}
		if s.Demotions > s.Promotions {
			t.Errorf("%s: Demotions %d > Promotions %d", when, s.Demotions, s.Promotions)
		}
		if s.WALErrors == 0 && s.Recorded > s.WALEntries {
			t.Errorf("%s: Recorded %d > WALEntries %d", when, s.Recorded, s.WALEntries)
		}
		var hsum uint64
		for _, h := range hist {
			hsum += h.Count()
		}
		if hsum > s.Served {
			t.Errorf("%s: Σ histogram counts %d > Served %d", when, hsum, s.Served)
		}
	}

	scrapes := 0
	for {
		select {
		case <-done:
			wg.Wait()
			if scrapes == 0 {
				t.Fatal("scraper never overlapped traffic; the soak proved nothing")
			}
			// Quiescent: the inequalities collapse to equalities.
			hist := lp.ServeHistograms()
			s := lp.Stats()
			want := uint64(writers * turns)
			if s.Served != want || s.Recorded != want {
				t.Fatalf("served=%d recorded=%d, want %d each", s.Served, s.Recorded, want)
			}
			if sum := s.Tier0Hits + s.Tier1Hits + s.Tier2Serves; sum != want {
				t.Fatalf("tier hits %d != served %d at quiescence", sum, want)
			}
			// The journal holds one entry per feedback record plus one per
			// tier promotion/demotion (no swaps here: drift is disabled).
			if wantWAL := want + s.Promotions + s.Demotions; s.WALEntries != wantWAL || s.WALErrors != 0 {
				t.Fatalf("wal entries=%d errors=%d, want %d/0", s.WALEntries, s.WALErrors, wantWAL)
			}
			var hsum uint64
			for _, h := range hist {
				hsum += h.Count()
			}
			if hsum != want {
				t.Fatalf("Σ histogram counts %d != served %d at quiescence", hsum, want)
			}
			if s.Promotions == 0 || s.Demotions == 0 {
				t.Fatalf("traffic moved no tier counters (promotions=%d demotions=%d); weak soak", s.Promotions, s.Demotions)
			}
			return
		default:
			check("concurrent")
			scrapes++
		}
	}
}
