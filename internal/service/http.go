package service

// The wire surface of the online doctor: a JSON-over-HTTP projection of the
// Loop so traffic can reach the doctor from outside the process (the paper's
// service framing — SQL in, steered plan out, observed latency back in).
//
//	POST /v1/optimize  {"query_id": "..."} | {"query_ids": [...]}
//	                   | {"query": {...}}  | {"queries": [{...}, ...]}
//	                   optional "execute": true — the server executes the
//	                   chosen plan on the active replica and records the
//	                   feedback itself (a one-call doctor-loop turn)
//	POST /v1/feedback  {"serve_id": "...", "latency_ms": 12.3}
//	GET  /v1/stats
//	POST /v1/checkpoint  — force a durable checkpoint (requires a store)
//	POST /v1/catalog   {"ddl": [{"kind": "drop-index", ...}, ...]} — apply
//	                   one atomic schema-evolution batch to the live catalog
//	GET  /v1/catalog   — live catalog epoch, hash, and applied-DDL log
//	GET  /metrics             — Prometheus text exposition (see httpmetrics.go)
//	GET  /v1/explain/{serve_id} — why the doctor chose that plan (explain.go)
//	GET  /v1/advisor          — async advisor findings (advisor.go)
//
// Request bodies are size-capped (413 past 1 MiB) and strictly parsed:
// unknown fields are rejected so malformed specs fail loudly.
//
// Every /v1/optimize response row carries a serve_id; clients that execute
// plans themselves report the observed latency through /v1/feedback, which
// feeds the drift detector and (possibly) a background retrain — the same
// Record path in-process callers use. Batch requests ride the batched
// serving path: one model generation, one shared scoring pass.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/repl"
)

// HTTPOptions configures the HTTP projection of a Loop.
type HTTPOptions struct {
	// Resolve maps a query_id to a known query (typically the workload's
	// queries plus any drift variants). nil means only inline query specs
	// are accepted.
	Resolve func(id string) *query.Query
	// MaxPending bounds the served-plan ring awaiting feedback (FIFO
	// eviction). 0 defaults to 4096.
	MaxPending int

	// Follower marks this surface as fronting a read-only replica: write
	// endpoints (/v1/feedback without a forwarder, /v1/checkpoint,
	// "execute": true optimizes, the repl source endpoints) answer 403 with
	// LeaderAddr in the body; read endpoints serve normally.
	Follower bool
	// LeaderAddr is the leader's address, reported in follower refusals.
	LeaderAddr string
	// ForwardFeedback, when set on a follower, relays /v1/feedback to the
	// tenant's leader in durable identity form (see NewFeedbackForwarder).
	ForwardFeedback func(ctx context.Context, q *query.Query, pe *planner.PlanEval, latencyMs float64) error
	// ReplStats, when set, surfaces the follower's replication-tailer
	// progress on /metrics (foss_repl_* families).
	ReplStats func() repl.Stats
}

// HTTPServer is the http.Handler exposing a Loop. Safe for concurrent use.
type HTTPServer struct {
	lp   *Loop
	opts HTTPOptions
	mux  *http.ServeMux

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*pendingServe
	// order is the issuance-order ring of every remembered serve (live and
	// consumed alike), bounded by MaxPending; live is how many of them still
	// await feedback (the pending_feedback stat). Consumed entries stay in
	// the map so /v1/explain can answer for already-reported serves; their
	// retention is bounded separately by consumedOrder, and popping one off
	// either ring is bookkeeping, never an expiry.
	order         []uint64
	consumedOrder []uint64
	live          int
	// evictedThrough is the expiry horizon: every serve id at or below it
	// was evicted live (FIFO eviction before its feedback arrived), so
	// feedback for one is answered with 410 Gone / ErrServeIDExpired instead
	// of a generic not-found.
	evictedThrough uint64
	expired        atomic.Uint64 // ids evicted before their feedback arrived
}

// pendingServe is one served plan in the ring: the feedback target while
// live, the /v1/explain record for its retained lifetime. q, pe and res are
// immutable after insertion; consumed/latency flip under the server mu.
type pendingServe struct {
	q  *query.Query
	pe *planner.PlanEval
	// res is the serve-time decision context (epoch, tier, cache hit,
	// optimization time) — what /v1/explain reports.
	res Result
	// consumed marks feedback as recorded (client- or server-side); a
	// consumed entry answers 404 to further feedback but keeps explaining.
	consumed   bool
	hasLatency bool
	latencyMs  float64
}

// NewHTTPServer builds the HTTP surface over an online loop.
func NewHTTPServer(lp *Loop, opts HTTPOptions) *HTTPServer {
	if opts.MaxPending <= 0 {
		opts.MaxPending = 4096
	}
	s := &HTTPServer{lp: lp, opts: opts, pending: map[uint64]*pendingServe{}, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("/v1/feedback", s.handleFeedback)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("/v1/catalog", s.handleCatalog)
	s.mux.HandleFunc("/v1/explain/", s.handleExplain)
	s.mux.HandleFunc("/v1/advisor", s.handleAdvisor)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/repl/manifest", s.handleReplManifest)
	s.mux.HandleFunc("/v1/repl/checkpoint/", s.handleReplCheckpoint)
	s.mux.HandleFunc("/v1/repl/feedback", s.handleReplFeedback)
	return s
}

// maxBodyBytes bounds every request body: plans and feedback are small, so
// anything past 1 MiB is either a mistake or abuse — rejected with 413
// instead of buffered.
const maxBodyBytes = 1 << 20

// decodeBody decodes a JSON request body with the two hardening rules every
// handler shares: bodies are size-capped (413 past maxBodyBytes) and
// unknown fields are rejected (400), so a misspelled field fails loudly
// instead of half-parsing into a default. Returns false after writing the
// error response.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeErr(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return false
	}
	return true
}

// ServeHTTP implements http.Handler.
func (s *HTTPServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---- wire types ----

// wireFilter is the JSON form of a filter predicate.
type wireFilter struct {
	Alias string  `json:"alias"`
	Col   string  `json:"col"`
	Op    string  `json:"op"` // eq ne lt le gt ge between in
	Val   int64   `json:"val"`
	Hi    int64   `json:"hi,omitempty"`
	Set   []int64 `json:"set,omitempty"`
}

// wireJoin is the JSON form of an equi-join predicate.
type wireJoin struct {
	LA string `json:"la"`
	LC string `json:"lc"`
	RA string `json:"ra"`
	RC string `json:"rc"`
}

// wireTable is the JSON form of a table reference.
type wireTable struct {
	Table string `json:"table"`
	Alias string `json:"alias"`
}

// wireQuery is the inline query spec accepted by /v1/optimize.
type wireQuery struct {
	ID      string       `json:"id,omitempty"`
	Tables  []wireTable  `json:"tables"`
	Joins   []wireJoin   `json:"joins"`
	Filters []wireFilter `json:"filters,omitempty"`
}

var wireOps = map[string]query.CmpOp{
	"eq": query.Eq, "ne": query.Ne, "lt": query.Lt, "le": query.Le,
	"gt": query.Gt, "ge": query.Ge, "between": query.Between, "in": query.In,
}

// toQuery converts and validates an inline spec.
func (wq wireQuery) toQuery() (*query.Query, error) {
	if len(wq.Tables) == 0 {
		return nil, fmt.Errorf("query spec has no tables")
	}
	q := &query.Query{ID: wq.ID}
	for _, t := range wq.Tables {
		q.Tables = append(q.Tables, query.TableRef{Table: t.Table, Alias: t.Alias})
	}
	for _, j := range wq.Joins {
		q.Joins = append(q.Joins, query.JoinPred{LA: j.LA, LC: j.LC, RA: j.RA, RC: j.RC})
	}
	for _, f := range wq.Filters {
		op, ok := wireOps[f.Op]
		if !ok {
			return nil, fmt.Errorf("unknown filter op %q", f.Op)
		}
		q.Filters = append(q.Filters, query.Filter{Alias: f.Alias, Col: f.Col, Op: op, Val: f.Val, Hi: f.Hi, Set: f.Set})
	}
	if q.ID == "" {
		q.ID = fmt.Sprintf("http_%x", q.Fingerprint())
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// optimizeRequest is the /v1/optimize body.
type optimizeRequest struct {
	QueryID  string      `json:"query_id,omitempty"`
	QueryIDs []string    `json:"query_ids,omitempty"`
	Query    *wireQuery  `json:"query,omitempty"`
	Queries  []wireQuery `json:"queries,omitempty"`
	// Execute runs the chosen plan on the active replica and records the
	// observed latency server-side (one-call doctor-loop turn).
	Execute bool `json:"execute,omitempty"`
}

// planJSON summarizes a chosen plan on the wire.
type planJSON struct {
	Order   []string `json:"order"`
	Methods []string `json:"methods"`
	Step    int      `json:"step"`
	ICPKey  string   `json:"icp_key"`
	EstCost float64  `json:"est_cost"`
	EstRows float64  `json:"est_rows"`
}

// optimizeRow is one served query in an /v1/optimize response.
type optimizeRow struct {
	// ServeID names this serve in the pending ring — the /v1/feedback target
	// for client-executed plans and the /v1/explain handle either way.
	// "execute": true rows are recorded server-side, so their slot is
	// already consumed: later feedback for one answers 404 (already
	// reported) and cannot double-count the execution.
	ServeID  string `json:"serve_id,omitempty"`
	QueryID  string `json:"query_id"`
	Epoch    uint64 `json:"epoch"`
	CacheHit bool   `json:"cache_hit"`
	// Tier reports the serving tier that produced the plan (0 = plan memory,
	// 1 = greedy micro-planner, 2 = full AAM steering).
	Tier      int      `json:"tier"`
	OptTimeMs float64  `json:"opt_time_ms"`
	Plan      planJSON `json:"plan"`
	// LatencyMs is present only when the request asked the server to
	// execute ("execute": true).
	LatencyMs *float64 `json:"latency_ms,omitempty"`
}

// optimizeResponse is the /v1/optimize body for batch requests; single-query
// requests receive the bare optimizeRow.
type optimizeResponse struct {
	Results []optimizeRow `json:"results"`
}

// feedbackRequest is the /v1/feedback body.
type feedbackRequest struct {
	ServeID   string  `json:"serve_id"`
	LatencyMs float64 `json:"latency_ms"`
}

// statsResponse is the /v1/stats body (and, keyed by tenant, one row of the
// multi-tenant aggregate roll-up).
type statsResponse struct {
	Backend string    `json:"backend"`
	Stats   Stats     `json:"stats"`
	Cache   cacheJSON `json:"cache"`
	Pending int       `json:"pending_feedback"`
	// Expired counts serve_ids evicted from the pending ring before their
	// feedback arrived (each later report of one gets 410 Gone).
	Expired uint64 `json:"expired_serve_ids"`
}

type cacheJSON struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
	Size      int     `json:"size"`
	Capacity  int     `json:"capacity"`
	Epoch     uint64  `json:"epoch"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- handlers ----

func (s *HTTPServer) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req optimizeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Execute && s.opts.Follower {
		// Server-side execution records feedback — a write. Plain optimizes
		// (plan out, no recording) serve fine from a follower.
		writeFollowerErr(w, s.opts.LeaderAddr, "server-side execution")
		return
	}
	single := req.QueryID != "" || req.Query != nil
	var qs []*query.Query
	add := func(q *query.Query) { qs = append(qs, q) }
	for _, id := range append(req.QueryIDs, req.QueryID) {
		if id == "" {
			continue
		}
		if s.opts.Resolve == nil {
			writeErr(w, http.StatusBadRequest, "query_id lookup not configured; send an inline query spec")
			return
		}
		q := s.opts.Resolve(id)
		if q == nil {
			writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown query_id %q", id))
			return
		}
		add(q)
	}
	specs := req.Queries
	if req.Query != nil {
		specs = append(specs, *req.Query)
	}
	for _, wq := range specs {
		q, err := wq.toQuery()
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad query spec: "+err.Error())
			return
		}
		add(q)
	}
	if len(qs) == 0 {
		writeErr(w, http.StatusBadRequest, "no query_id/query_ids/query/queries in request")
		return
	}

	results, err := s.lp.ServeBatch(r.Context(), qs)
	if err != nil {
		writeServeErr(w, err)
		return
	}
	rows := make([]optimizeRow, len(results))
	for i, res := range results {
		row := optimizeRow{
			QueryID:   qs[i].ID,
			Epoch:     res.Epoch,
			CacheHit:  res.CacheHit,
			Tier:      res.Tier,
			OptTimeMs: res.OptTime.Seconds() * 1000,
			Plan:      planSummary(res.Eval),
		}
		if req.Execute {
			// Server-side turn: execute, record, and run the slot through
			// the ring exactly like the two-call path would — inserted, then
			// immediately consumed. Capacity accounting and the eviction
			// horizon stay identical across both paths, and the serve
			// remains explainable.
			lat := s.lp.Active().Execute(res.Eval.CP)
			s.lp.Record(qs[i], res.Eval, lat)
			row.LatencyMs = &lat
			row.ServeID = s.rememberExecuted(qs[i], res.Eval, res, lat)
		} else {
			row.ServeID = s.remember(qs[i], res.Eval, res)
		}
		rows[i] = row
	}
	if single && len(rows) == 1 {
		writeJSON(w, http.StatusOK, rows[0])
		return
	}
	writeJSON(w, http.StatusOK, optimizeResponse{Results: rows})
}

func (s *HTTPServer) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req feedbackRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// Zero is a legitimate observation — sub-millisecond executions round
	// down to it; only negative latencies are nonsense.
	if req.LatencyMs < 0 {
		writeErr(w, http.StatusBadRequest, "latency_ms must be >= 0")
		return
	}
	if s.opts.Follower && s.opts.ForwardFeedback == nil {
		writeFollowerErr(w, s.opts.LeaderAddr, "feedback ingestion")
		return
	}
	ps, err := s.take(req.ServeID)
	if err != nil {
		if errors.Is(err, fosserr.ErrServeIDExpired) {
			writeErr(w, http.StatusGone, err.Error())
			return
		}
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	if s.opts.Follower {
		// Follower with a forwarder: the serve happened here (the serve_id
		// ring is local), but the observation trains the leader. Relay it in
		// durable identity form; the next checkpoint carries it back.
		if err := s.opts.ForwardFeedback(r.Context(), ps.q, ps.pe, req.LatencyMs); err != nil {
			writeErr(w, http.StatusBadGateway, "forward to leader: "+err.Error())
			return
		}
		s.noteLatency(ps, req.LatencyMs)
		writeJSON(w, http.StatusOK, map[string]any{"recorded": true, "forwarded": true, "leader": s.opts.LeaderAddr})
		return
	}
	if !s.lp.Record(ps.q, ps.pe, req.LatencyMs) {
		// The loop is draining: the observation was NOT ingested — a 200
		// here would be a false ack for a sample the doctor threw away.
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Sprintf("loop draining; feedback not recorded: %v", fosserr.ErrLoopClosed))
		return
	}
	s.noteLatency(ps, req.LatencyMs)
	writeJSON(w, http.StatusOK, map[string]any{"recorded": true, "epoch": s.lp.Epoch()})
}

func (s *HTTPServer) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// statsSnapshot assembles the /v1/stats body; the multi-tenant server reuses
// it per shard for the aggregate roll-up.
func (s *HTTPServer) statsSnapshot() statsResponse {
	active := s.lp.Active()
	cs := active.CacheStats()
	s.mu.Lock()
	pending := s.live
	s.mu.Unlock()
	return statsResponse{
		Backend: active.BackendName(),
		Stats:   s.lp.Stats(),
		Cache: cacheJSON{
			Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions,
			HitRate: cs.HitRate(), Size: cs.Size, Capacity: cs.Capacity, Epoch: cs.Epoch,
		},
		Pending: pending,
		Expired: s.expired.Load(),
	}
}

// Loop returns the online loop this server fronts.
func (s *HTTPServer) Loop() *Loop { return s.lp }

// handleCheckpoint forces a durable checkpoint of the active replica — the
// operational "flush now" knob (pre-maintenance, pre-deploy). 412 when the
// loop runs without a store.
func (s *HTTPServer) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.opts.Follower {
		writeFollowerErr(w, s.opts.LeaderAddr, "checkpointing")
		return
	}
	name, err := s.lp.Checkpoint()
	if err != nil {
		if errors.Is(err, fosserr.ErrNoStore) {
			writeErr(w, http.StatusPreconditionFailed, "no durability store attached (run with -state-dir)")
			return
		}
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"checkpoint": name, "epoch": s.lp.Epoch()})
}

// catalogRequest is the POST /v1/catalog body: one atomic schema-evolution
// batch (all statements apply, or none do).
type catalogRequest struct {
	DDL []catalog.DDL `json:"ddl"`
}

// catalogResponse describes the live catalog (GET and successful POST alike).
type catalogResponse struct {
	CatalogEpoch uint64        `json:"catalog_epoch"`
	CatalogHash  string        `json:"catalog_hash"`
	Epoch        uint64        `json:"epoch"` // serving epoch (bumped by POST)
	Applied      int           `json:"applied,omitempty"`
	Log          []catalog.DDL `json:"log,omitempty"`
}

// handleCatalog applies a DDL batch to the live catalog (POST) or reports the
// catalog's durable identity (GET; serves fine from a follower — its catalog
// advances through checkpoint replication).
func (s *HTTPServer) handleCatalog(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		active := s.lp.Active()
		writeJSON(w, http.StatusOK, catalogResponse{
			CatalogEpoch: active.CatalogEpoch(),
			CatalogHash:  fmt.Sprintf("%016x", active.CatalogHash()),
			Epoch:        s.lp.Epoch(),
			Log:          active.CatalogLog(),
		})
	case http.MethodPost:
		if s.opts.Follower {
			writeFollowerErr(w, s.opts.LeaderAddr, "schema evolution")
			return
		}
		var req catalogRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if len(req.DDL) == 0 {
			writeErr(w, http.StatusBadRequest, "no ddl statements in request")
			return
		}
		epoch, err := s.lp.ApplyDDL(req.DDL)
		if err != nil {
			switch {
			case errors.Is(err, fosserr.ErrLoopClosed):
				writeErr(w, http.StatusServiceUnavailable, err.Error())
			case errors.Is(err, fosserr.ErrNotLeader):
				writeFollowerErr(w, s.opts.LeaderAddr, "schema evolution")
			case errors.Is(err, fosserr.ErrBadConfig):
				writeErr(w, http.StatusPreconditionFailed, err.Error())
			default:
				// Apply validates the batch against the live schema (unknown
				// table, duplicate index, ...) — the client's DDL, not a
				// server fault.
				writeErr(w, http.StatusUnprocessableEntity, err.Error())
			}
			return
		}
		writeJSON(w, http.StatusOK, catalogResponse{
			CatalogEpoch: epoch,
			CatalogHash:  fmt.Sprintf("%016x", s.lp.Active().CatalogHash()),
			Epoch:        s.lp.Epoch(),
			Applied:      len(req.DDL),
		})
	default:
		writeErr(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}

// ---- serve-id ring ----

// remember stores a served plan for later feedback, evicting FIFO past
// MaxPending. Evicted ids advance the expiry horizon so their (too-late)
// feedback is classified as expired, not unknown.
func (s *HTTPServer) remember(q *query.Query, pe *planner.PlanEval, res Result) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("s%d", s.insertLocked(q, pe, res))
}

// rememberExecuted is remember for the one-call execute:true path: the slot
// enters the ring, then is consumed in the same critical section — the exact
// state the two-call path reaches after remember + take, so capacity
// accounting, the eviction horizon, and duplicate-feedback classification
// are identical across both paths.
func (s *HTTPServer) rememberExecuted(q *query.Query, pe *planner.PlanEval, res Result, latencyMs float64) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.insertLocked(q, pe, res)
	ps := s.pending[seq]
	s.consumeLocked(seq, ps)
	ps.hasLatency = true
	ps.latencyMs = latencyMs
	return fmt.Sprintf("s%d", seq)
}

// insertLocked allocates the next serve id, inserts the live entry, and runs
// FIFO eviction. Caller holds mu. With MaxPending ≥ 1 the just-inserted
// entry (at the ring's back) can never be the one evicted.
func (s *HTTPServer) insertLocked(q *query.Query, pe *planner.PlanEval, res Result) uint64 {
	s.nextID++
	seq := s.nextID
	s.pending[seq] = &pendingServe{q: q, pe: pe, res: res}
	s.order = append(s.order, seq)
	s.live++
	for len(s.order) > s.opts.MaxPending {
		drop := s.order[0]
		s.order = s.order[1:]
		if ps := s.pending[drop]; ps == nil || ps.consumed {
			// Already consumed by feedback (still retained for explain, or
			// already released by the consumed ring): popping it here is
			// bookkeeping, not an expiry — it must neither count nor move
			// the 410 horizon (a duplicate report stays a 404).
			continue
		}
		delete(s.pending, drop)
		s.live--
		s.expired.Add(1)
		if drop > s.evictedThrough {
			s.evictedThrough = drop
		}
	}
	return seq
}

// consumeLocked flips a live entry to consumed and hands its retention to
// the consumed ring (bounded by MaxPending; leaving THAT ring deletes the
// entry silently — its feedback already arrived, nothing expires). Caller
// holds mu.
func (s *HTTPServer) consumeLocked(seq uint64, ps *pendingServe) {
	ps.consumed = true
	s.live--
	s.consumedOrder = append(s.consumedOrder, seq)
	for len(s.consumedOrder) > s.opts.MaxPending {
		c := s.consumedOrder[0]
		s.consumedOrder = s.consumedOrder[1:]
		delete(s.pending, c)
	}
}

// take consumes a pending serve (one feedback per serve_id) and returns it.
// An id below the eviction horizon is gone for good —
// fosserr.ErrServeIDExpired (410 on the wire); an id the server never issued
// or already consumed stays a plain not-found (404).
func (s *HTTPServer) take(id string) (*pendingServe, error) {
	var seq uint64
	if _, err := fmt.Sscanf(id, "s%d", &seq); err != nil || fmt.Sprintf("s%d", seq) != id {
		return nil, fmt.Errorf("unknown serve_id %q", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ps, ok := s.pending[seq]; ok && !ps.consumed {
		s.consumeLocked(seq, ps)
		return ps, nil
	} else if ok {
		return nil, fmt.Errorf("unknown or already-reported serve_id %q", id)
	}
	if seq > 0 && seq <= s.evictedThrough {
		return nil, fmt.Errorf("serve_id %q evicted from the pending ring before its feedback arrived (ring holds %d): %w",
			id, s.opts.MaxPending, fosserr.ErrServeIDExpired)
	}
	return nil, fmt.Errorf("unknown or already-reported serve_id %q", id)
}

// noteLatency back-fills the observed latency onto a consumed entry once the
// loop has actually ingested it, so /v1/explain reports only recorded
// latencies.
func (s *HTTPServer) noteLatency(ps *pendingServe, latencyMs float64) {
	s.mu.Lock()
	ps.hasLatency = true
	ps.latencyMs = latencyMs
	s.mu.Unlock()
}

// ---- helpers ----

func planSummary(pe *planner.PlanEval) planJSON {
	methods := make([]string, len(pe.ICP.Methods))
	for i, m := range pe.ICP.Methods {
		methods[i] = m.String()
	}
	pj := planJSON{
		Order:   append([]string(nil), pe.ICP.Order...),
		Methods: methods,
		Step:    pe.Step,
		ICPKey:  pe.ICP.Key(),
	}
	if pe.CP != nil && pe.CP.Root != nil {
		pj.EstCost = pe.CP.Root.EstCost
		pj.EstRows = pe.CP.Root.EstRows
	}
	return pj
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

// writeServeErr maps serving errors onto wire statuses: planning failures
// are the client's query (422), cancellations are timeouts (504), a closed
// loop is a draining service (503), the rest are server faults.
func writeServeErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, fosserr.ErrNoPlan), errors.Is(err, fosserr.ErrNoCandidate):
		writeErr(w, http.StatusUnprocessableEntity, err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeErr(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, fosserr.ErrLoopClosed):
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, err.Error())
	}
}
