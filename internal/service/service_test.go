package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/learner"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/runtime"
	"github.com/foss-db/foss/internal/store"
)

// fq builds a distinct tiny query; v differentiates fingerprints.
func fq(v int64) *query.Query {
	return &query.Query{
		ID:       fmt.Sprintf("q%d", v),
		Template: "t",
		Tables:   []query.TableRef{{Table: "a", Alias: "a"}},
		Filters:  []query.Filter{{Alias: "a", Col: "c", Op: query.Eq, Val: v}},
	}
}

// fakeReplica is a scripted Replica: constant per-query latencies, counted
// train/save/load calls, optional train delay for overlap tests. The catalog
// half tracks an applied-DDL log and the set of dropped tables so stale-query
// refusal is observable.
type fakeReplica struct {
	name       string
	buf        *learner.Buffer
	trainDelay time.Duration

	trains atomic.Int64
	saves  atomic.Int64
	loads  atomic.Int64
	serves atomic.Int64

	catMu   sync.Mutex
	catLog  []catalog.DDL
	dropped map[string]bool
}

func newFake(name string) *fakeReplica {
	return &fakeReplica{name: name, buf: learner.NewBuffer(), dropped: map[string]bool{}}
}

func (f *fakeReplica) ApplyDDL(ddls []catalog.DDL) (uint64, error) {
	f.catMu.Lock()
	defer f.catMu.Unlock()
	for _, d := range ddls {
		switch d.Kind {
		case catalog.DDLDropTable:
			f.dropped[d.Table] = true
		case catalog.DDLAddTable:
			delete(f.dropped, d.Table)
		}
	}
	f.catLog = append(f.catLog, ddls...)
	return uint64(len(f.catLog)), nil
}

func (f *fakeReplica) ResyncCatalog() error { return nil }

func (f *fakeReplica) SyncCatalog(epoch, hash uint64, log []catalog.DDL) error {
	f.catMu.Lock()
	cur := uint64(len(f.catLog))
	f.catMu.Unlock()
	if cur > epoch {
		return fmt.Errorf("fake: catalog at %d, checkpoint at %d", cur, epoch)
	}
	if cur == epoch {
		return nil
	}
	_, err := f.ApplyDDL(log[cur:])
	return err
}

func (f *fakeReplica) CheckCatalog(q *query.Query) error {
	f.catMu.Lock()
	defer f.catMu.Unlock()
	for _, t := range q.Tables {
		if f.dropped[t.Table] {
			return fmt.Errorf("fake: table %q dropped: %w", t.Table, fosserr.ErrCatalogStale)
		}
	}
	return nil
}

func (f *fakeReplica) CatalogEpoch() uint64 {
	f.catMu.Lock()
	defer f.catMu.Unlock()
	return uint64(len(f.catLog))
}

func (f *fakeReplica) CatalogHash() uint64 { return 0 }

func (f *fakeReplica) CatalogLog() []catalog.DDL {
	f.catMu.Lock()
	defer f.catMu.Unlock()
	return append([]catalog.DDL(nil), f.catLog...)
}

func (f *fakeReplica) OptimizeEvalContext(ctx context.Context, q *query.Query) (*planner.PlanEval, bool, time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, 0, err
	}
	f.serves.Add(1)
	return &planner.PlanEval{Q: q, Latency: math.NaN()}, false, time.Microsecond, nil
}

func (f *fakeReplica) OptimizeEvalBatch(ctx context.Context, qs []*query.Query) ([]*planner.PlanEval, []bool, time.Duration, error) {
	out := make([]*planner.PlanEval, len(qs))
	hits := make([]bool, len(qs))
	for i, q := range qs {
		pe, _, _, err := f.OptimizeEvalContext(ctx, q)
		if err != nil {
			return nil, nil, 0, err
		}
		out[i] = pe
	}
	return out, hits, time.Microsecond, nil
}

func (f *fakeReplica) BackendName() string { return "fake" }

func (f *fakeReplica) TrainOnContext(ctx context.Context, qs []*query.Query, iterations int, _ func(learner.IterStats)) error {
	if f.trainDelay > 0 {
		select {
		case <-time.After(f.trainDelay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	f.trains.Add(1)
	return nil
}

func (f *fakeReplica) Save() ([]byte, error) { f.saves.Add(1); return []byte(f.name), nil }
func (f *fakeReplica) Load([]byte) error     { f.loads.Add(1); return nil }

func (f *fakeReplica) ExpertPlan(q *query.Query) (*plan.CP, time.Duration, error) {
	return &plan.CP{}, time.Microsecond, nil
}
func (f *fakeReplica) Execute(cp *plan.CP) float64    { return 10 }
func (f *fakeReplica) Buffer() *learner.Buffer        { return f.buf }
func (f *fakeReplica) CacheStats() runtime.CacheStats { return runtime.CacheStats{} }

func (f *fakeReplica) RebuildEval(q *query.Query, icp plan.ICP, step int) (*planner.PlanEval, error) {
	return &planner.PlanEval{Q: q, ICP: icp, Step: step, Latency: math.NaN()}, nil
}

func syncConfig() Config {
	return Config{
		Detector:          DetectorConfig{Window: 4, Threshold: 1.2, MinSamples: 4, NoveltyFrac: 0},
		Cooldown:          1,
		RetrainIterations: 1,
		RetrainQueries:    16,
		Background:        false,
	}
}

// TestRecordJournalsAndReplays: with a store attached, every accepted
// Record lands in the WAL before ingestion (zero latencies included,
// negative rejected), and replaying the journal into a fresh loop
// reconstructs the buffer and the drift detector's window.
func TestRecordJournalsAndReplays(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := syncConfig()
	cfg.Detector.Threshold = 100 // never drift
	cfg.Store = st
	blue, green := newFake("blue"), newFake("green")
	lp := New(cfg, blue, green, nil)

	rec := func(v int64, lat float64) {
		q := fq(v)
		pe, _, _, err := blue.OptimizeEvalContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		lp.Record(q, pe, lat)
	}
	rec(1, 5)
	rec(2, 0)  // sub-millisecond execution: must be accepted
	rec(3, -1) // negative: rejected, never journaled
	rec(4, 20)

	stats := lp.Stats()
	if stats.Recorded != 3 {
		t.Fatalf("recorded %d, want 3 (zero accepted, negative rejected)", stats.Recorded)
	}
	if stats.WALEntries != 3 || stats.WALErrors != 0 {
		t.Fatalf("wal entries %d errors %d, want 3/0", stats.WALEntries, stats.WALErrors)
	}
	liveWindow := lp.det.WindowState()
	st.Close()

	// Replay into a fresh loop (fresh store handle over the same dir).
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var entries []store.WALEntry
	if err := st2.WAL().Replay(0, func(e store.WALEntry) error { entries = append(entries, e); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("journal holds %d entries, want 3", len(entries))
	}
	cfg2 := cfg
	cfg2.Store = st2
	blue2, green2 := newFake("blue2"), newFake("green2")
	lp2 := New(cfg2, blue2, green2, nil)
	n, err := lp2.Replay(entries)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d, want 3", n)
	}
	if got := blue2.buf.Size(); got != 3 {
		t.Fatalf("active buffer rebuilt with %d executions, want 3", got)
	}
	if got := green2.buf.Size(); got != 3 {
		t.Fatalf("standby buffer rebuilt with %d executions, want 3", got)
	}
	replayWindow := lp2.det.WindowState()
	if replayWindow.Mean != liveWindow.Mean || replayWindow.NovelFrac != liveWindow.NovelFrac {
		t.Fatalf("replayed window %+v != live window %+v", replayWindow, liveWindow)
	}
	if got := lp2.Stats(); got.Replayed != 3 {
		t.Fatalf("stats replayed %d, want 3", got.Replayed)
	}
}

// TestDetectorRegression: the window must fire only once MinSamples are in
// and the mean ratio crosses the threshold.
func TestDetectorRegression(t *testing.T) {
	d := NewDetector(DetectorConfig{Window: 4, Threshold: 1.5, MinSamples: 3}, nil)
	if sig := d.Observe(1, 9.0); sig.Drift {
		t.Fatal("drift before MinSamples")
	}
	if sig := d.Observe(2, 9.0); sig.Drift {
		t.Fatal("drift before MinSamples")
	}
	sig := d.Observe(3, 9.0)
	if !sig.Drift || sig.Reason != "regression" {
		t.Fatalf("expected regression drift, got %+v", sig)
	}
	d.Reset()
	if st := d.WindowState(); st.Mean != 0 {
		t.Fatalf("window survived reset: %+v", st)
	}
	// healthy ratios never fire
	for i := 0; i < 10; i++ {
		if sig := d.Observe(uint64(100+i), 1.0); sig.Drift {
			t.Fatalf("healthy window drifted: %+v", sig)
		}
	}
}

// TestDetectorRollingEviction: old observations must leave the window.
func TestDetectorRollingEviction(t *testing.T) {
	d := NewDetector(DetectorConfig{Window: 2, Threshold: 1.5, MinSamples: 2}, nil)
	d.Observe(1, 10)
	d.Observe(2, 10)
	// two healthy observations push both spikes out
	d.Observe(3, 1)
	sig := d.Observe(4, 1)
	if sig.Drift {
		t.Fatalf("evicted spikes still drifting: %+v", sig)
	}
	if math.Abs(sig.Mean-1) > 1e-12 {
		t.Fatalf("window mean %v after eviction, want 1", sig.Mean)
	}
}

// TestDetectorNovelty: unseen fingerprints signal drift even at healthy
// latencies; known fingerprints never do.
func TestDetectorNovelty(t *testing.T) {
	d := NewDetector(DetectorConfig{Window: 4, Threshold: 2, MinSamples: 4, NoveltyFrac: 0.5}, []uint64{1, 2})
	d.Observe(1, 1)
	d.Observe(2, 1)
	d.Observe(3, 1) // novel
	sig := d.Observe(4, 1)
	if !sig.Drift || sig.Reason != "novelty" {
		t.Fatalf("expected novelty drift, got %+v", sig)
	}
	// second pass: 3 and 4 are now known, so the same stream stays quiet
	d.Reset()
	d.Observe(1, 1)
	d.Observe(2, 1)
	d.Observe(3, 1)
	if sig := d.Observe(4, 1); sig.Drift {
		t.Fatalf("re-seen fingerprints drifted: %+v", sig)
	}
}

// TestLoopSwapsOnRegression drives the full synchronous cycle: sustained
// regression → retrain on the standby → atomic promotion with an epoch bump
// → weight mirroring onto the demoted replica.
func TestLoopSwapsOnRegression(t *testing.T) {
	blue, green := newFake("blue"), newFake("green")
	lp := New(syncConfig(), blue, green, nil)

	if lp.Epoch() != 1 || lp.Active() != Replica(blue) {
		t.Fatal("blue must serve at epoch 1")
	}
	for i := int64(0); i < 4; i++ {
		res, err := lp.Serve(context.Background(), fq(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Epoch != 1 {
			t.Fatalf("pre-swap epoch %d", res.Epoch)
		}
		lp.Record(fq(i), res.Eval, 100) // expert executes at 10 → ratio 10
	}
	st := lp.Stats()
	if st.Swaps != 1 || st.Retrains != 1 || st.Drifts != 1 {
		t.Fatalf("expected one drift/retrain/swap, got %+v", st)
	}
	if lp.Epoch() != 2 || lp.Active() != Replica(green) {
		t.Fatalf("green must serve at epoch 2 (epoch=%d)", lp.Epoch())
	}
	if green.trains.Load() != 1 {
		t.Fatalf("standby trained %d times, want 1", green.trains.Load())
	}
	if green.saves.Load() != 1 || blue.loads.Load() != 1 {
		t.Fatalf("weights not mirrored onto demoted replica: saves=%d loads=%d",
			green.saves.Load(), blue.loads.Load())
	}
	// the drift window must restart clean after the swap
	if win := lp.det.WindowState(); win.Mean != 0 {
		t.Fatalf("detector window survived the swap: %+v", win)
	}
	// feedback reached both buffers
	if blue.buf.Size() == 0 || green.buf.Size() == 0 {
		t.Fatalf("feedback missing from a buffer: blue=%d green=%d", blue.buf.Size(), green.buf.Size())
	}
}

// TestLoopCooldown: a second drift inside the cooldown must not retrain.
func TestLoopCooldown(t *testing.T) {
	cfg := syncConfig()
	cfg.Cooldown = 8
	blue, green := newFake("blue"), newFake("green")
	lp := New(cfg, blue, green, nil)

	record := func(n int, base int64) {
		for i := int64(0); i < int64(n); i++ {
			res, err := lp.Serve(context.Background(), fq(base+i))
			if err != nil {
				t.Fatal(err)
			}
			lp.Record(fq(base+i), res.Eval, 100)
		}
	}
	record(8, 0)
	if st := lp.Stats(); st.Swaps != 1 {
		t.Fatalf("first drift did not swap: %+v", st)
	}
	// regressions keep coming but the cooldown holds
	record(7, 100)
	if st := lp.Stats(); st.Swaps != 1 {
		t.Fatalf("swap thrash inside cooldown: %+v", st)
	}
	record(1, 200)
	if st := lp.Stats(); st.Swaps != 2 {
		t.Fatalf("cooldown expiry did not allow the second retrain: %+v", st)
	}
}

// TestServeNeverBlocksDuringRetrain holds a slow background retrain open and
// requires Serve traffic to keep flowing through it (run with -race: this is
// also the concurrency soak for the swap protocol).
func TestServeNeverBlocksDuringRetrain(t *testing.T) {
	cfg := syncConfig()
	cfg.Background = true
	blue, green := newFake("blue"), newFake("green")
	green.trainDelay = 150 * time.Millisecond
	lp := New(cfg, blue, green, nil)

	for i := int64(0); i < 4; i++ {
		res, err := lp.Serve(context.Background(), fq(i))
		if err != nil {
			t.Fatal(err)
		}
		lp.Record(fq(i), res.Eval, 100)
	}
	// the background retrain is now sleeping inside TrainOn
	var during atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := int64(0); i < 50; i++ {
				res, err := lp.Serve(context.Background(), fq(1000+i))
				if err != nil {
					t.Error(err)
					return
				}
				if res.Eval == nil {
					t.Error("nil plan during retrain")
					return
				}
				if lp.Stats().Retraining {
					during.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	lp.Wait()
	if during.Load() == 0 {
		t.Fatal("no request overlapped the retrain window; the soak proved nothing")
	}
	if st := lp.Stats(); st.Swaps != 1 || st.RetrainErrors != 0 {
		t.Fatalf("background retrain did not complete cleanly: %+v", st)
	}
	if lp.Epoch() != 2 {
		t.Fatalf("epoch %d after background swap, want 2", lp.Epoch())
	}
}

// TestApplyDDLBumpsEpochAndRefusesStale: a loop-level DDL apply bumps the
// serving epoch (so every epoch-keyed cache invalidates) and the catalog
// epoch, journals a KindDDL record, and afterwards both Serve and Record
// refuse queries over the dropped table — counted in StaleInvalidations —
// while fresh queries keep flowing at the new epoch.
func TestApplyDDLBumpsEpochAndRefusesStale(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cfg := syncConfig()
	cfg.Detector.Threshold = 100 // never drift
	cfg.Store = st
	blue, green := newFake("blue"), newFake("green")
	lp := New(cfg, blue, green, nil)

	res, err := lp.Serve(context.Background(), fq(1))
	if err != nil {
		t.Fatal(err)
	}
	if !lp.Record(fq(1), res.Eval, 5) {
		t.Fatal("pre-DDL record refused")
	}

	epoch, err := lp.ApplyDDL([]catalog.DDL{{Kind: catalog.DDLDropTable, Table: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("catalog epoch %d, want 1", epoch)
	}
	if lp.Epoch() != 2 {
		t.Fatalf("serving epoch %d after DDL, want 2 (bump without swap)", lp.Epoch())
	}
	if lp.Active() != Replica(blue) {
		t.Fatal("DDL must republish the same replica, not swap")
	}

	// Queries over the dropped table are refused on both paths.
	if _, err := lp.Serve(context.Background(), fq(2)); !errIsStale(err) {
		t.Fatalf("serve of dropped table: %v, want ErrCatalogStale", err)
	}
	if lp.Record(fq(3), res.Eval, 5) {
		t.Fatal("stale record accepted")
	}
	stats := lp.Stats()
	if stats.CatalogEpoch != 1 || stats.CatalogApplies != 1 {
		t.Fatalf("catalog counters %+v", stats)
	}
	if stats.StaleInvalidations != 2 {
		t.Fatalf("stale invalidations %d, want 2", stats.StaleInvalidations)
	}

	// The batch is journaled as a KindDDL record at the bumped epoch.
	var ddl []store.WALEntry
	if err := st.WAL().Replay(0, func(e store.WALEntry) error {
		if e.Kind == store.KindDDL {
			ddl = append(ddl, e)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ddl) != 1 || ddl[0].Epoch != 2 || len(ddl[0].DDL) != 1 {
		t.Fatalf("ddl journal %+v, want one KindDDL at epoch 2", ddl)
	}
	// ApplyDDL checkpoints immediately: a warm restart resumes post-DDL.
	if stats.Checkpoints == 0 {
		t.Fatal("no checkpoint after DDL apply")
	}

	// A fresh-table query still serves, at the bumped epoch.
	q := &query.Query{ID: "qb", Template: "t", Tables: []query.TableRef{{Table: "b", Alias: "b"}}}
	res2, err := lp.Serve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Epoch != 2 {
		t.Fatalf("post-DDL serve at epoch %d, want 2", res2.Epoch)
	}
}

func errIsStale(err error) bool {
	return err != nil && errors.Is(err, fosserr.ErrCatalogStale)
}

// TestApplyDDLRefusedOnFollower: a follower's catalog advances only through
// ApplyCheckpoint.
func TestApplyDDLRefusedOnFollower(t *testing.T) {
	cfg := syncConfig()
	cfg.Follower = true
	lp := New(cfg, newFake("blue"), newFake("green"), nil)
	if _, err := lp.ApplyDDL([]catalog.DDL{{Kind: catalog.DDLDropTable, Table: "a"}}); !errors.Is(err, fosserr.ErrNotLeader) {
		t.Fatalf("follower ApplyDDL: %v, want ErrNotLeader", err)
	}
}

// TestLoopStep: the convenience turn serves, executes, and records.
func TestLoopStep(t *testing.T) {
	blue, green := newFake("blue"), newFake("green")
	cfg := syncConfig()
	cfg.Detector.Threshold = 100 // never drift
	lp := New(cfg, blue, green, nil)
	res, lat, err := lp.Step(context.Background(), fq(1))
	if err != nil {
		t.Fatal(err)
	}
	if lat != 10 {
		t.Fatalf("latency %v, want the fake's 10", lat)
	}
	if res.Epoch != 1 {
		t.Fatalf("epoch %d", res.Epoch)
	}
	st := lp.Stats()
	if st.Served != 1 || st.Recorded != 1 {
		t.Fatalf("counters %+v", st)
	}
}
