package service

// Explain tests: the wire round trip (optimize → explain must reproduce the
// served plan bit-for-bit, then track the feedback lifecycle), the serve-id
// classification (404 vs 410), the served-vs-expert hint diff, and the
// execute:true ring-accounting regression — the one-call path must run its
// slot through the ring exactly like the two-call path.

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/query"
)

// TestHTTPExplainRoundTrip: the explain body's served block must match the
// optimize row's plan bit-for-bit, carry the tier decision, and flip to
// recorded (with the observed latency) once feedback lands — without
// consuming the pending slot itself.
func TestHTTPExplainRoundTrip(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100
	ts, _, _ := newWireFixture(t, cfg)

	_, row := postJSON(t, ts.URL+"/v1/optimize", `{"query_id": "q1"}`)
	sid := row["serve_id"].(string)
	servedPlan := row["plan"].(map[string]any)

	code, ex := getJSON(t, ts.URL+"/v1/explain/"+sid)
	if code != http.StatusOK {
		t.Fatalf("explain status %d: %v", code, ex)
	}
	if ex["serve_id"] != sid || ex["query_id"] != "q1" || ex["epoch"] != float64(1) {
		t.Fatalf("explain identity wrong: %v", ex)
	}
	if fp, _ := ex["fingerprint"].(string); len(fp) != 16 {
		t.Fatalf("fingerprint %q not 16 hex digits", fp)
	}
	td, _ := ex["tier_decision"].(string)
	if td == "" || !strings.Contains(td, "tier-2") {
		t.Fatalf("tier decision %q does not describe the serving tier", td)
	}
	served, _ := ex["served"].(map[string]any)
	if served == nil {
		t.Fatalf("no served block in %v", ex)
	}
	// Bit-for-bit: every field of the optimize row's plan summary must
	// reappear identically inside the explain served block.
	for _, key := range []string{"order", "methods", "step", "icp_key", "est_cost", "est_rows"} {
		if !reflect.DeepEqual(served[key], servedPlan[key]) {
			t.Fatalf("served.%s = %v, optimize row had %v", key, served[key], servedPlan[key])
		}
	}
	if ex["recorded"] != false {
		t.Fatalf("recorded before feedback: %v", ex["recorded"])
	}
	if _, hasLat := ex["latency_ms"]; hasLat {
		t.Fatalf("latency reported before feedback: %v", ex)
	}
	// The fake replica's expert plan has no extractable join tree, so the
	// hint diff is unavailable — but the failure must be explicit, not a
	// silent omission.
	if msg, _ := ex["expert_error"].(string); !strings.Contains(msg, "hint diff unavailable") {
		t.Fatalf("expert_error = %q, want an explicit hint-diff failure", msg)
	}

	// Explaining must NOT have consumed the slot: feedback still lands.
	code, fb := postJSON(t, ts.URL+"/v1/feedback", `{"serve_id": "`+sid+`", "latency_ms": 42.5}`)
	if code != http.StatusOK {
		t.Fatalf("feedback after explain: %d %v", code, fb)
	}
	_, ex = getJSON(t, ts.URL+"/v1/explain/"+sid)
	if ex["recorded"] != true || ex["latency_ms"] != float64(42.5) {
		t.Fatalf("explain after feedback: recorded=%v latency=%v", ex["recorded"], ex["latency_ms"])
	}

	// Unknown and malformed ids are 404s; wrong method is 405.
	for _, id := range []string{"s999", "bogus", "s1x", "s"} {
		if code, _ := getJSON(t, ts.URL+"/v1/explain/"+id); code != http.StatusNotFound {
			t.Fatalf("explain %q status %d, want 404", id, code)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/explain/"+sid, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST explain status %d", resp.StatusCode)
	}
}

// TestHTTPExplainEvicted: a serve id pushed out of the ring live answers 410
// to explain, matching the feedback classification.
func TestHTTPExplainEvicted(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100
	blue, green := newFake("blue"), newFake("green")
	lp := New(cfg, blue, green, nil)
	h := NewHTTPServer(lp, HTTPOptions{
		MaxPending: 2,
		Resolve: func(id string) *query.Query {
			v, _ := strconv.ParseInt(strings.TrimPrefix(id, "q"), 10, 64)
			return fq(v)
		},
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	var first string
	for i := 1; i <= 3; i++ {
		_, out := postJSON(t, ts.URL+"/v1/optimize", `{"query_id": "q`+strconv.Itoa(i)+`"}`)
		if i == 1 {
			first = out["serve_id"].(string)
		}
	}
	if code, _ := getJSON(t, ts.URL+"/v1/explain/"+first); code != http.StatusGone {
		t.Fatalf("evicted serve_id explain status %d, want 410", code)
	}
}

// TestDiffICP pins the served-vs-expert hint diff: identity, order changes,
// and per-join method changes (enumerated only when the orders line up).
func TestDiffICP(t *testing.T) {
	base := plan.ICP{Order: []string{"a", "b", "c"}, Methods: []plan.JoinMethod{plan.HashJoin, plan.NestLoop}}

	d := diffICP(base, base.Clone())
	if !d.MatchesExpert || d.OrderChanged || len(d.MethodChanges) != 0 {
		t.Fatalf("identical plans diffed: %+v", d)
	}
	if d.ServedKey != base.Key() || d.ExpertKey != base.Key() {
		t.Fatalf("keys wrong on identity diff: %+v", d)
	}

	reordered := plan.ICP{Order: []string{"b", "a", "c"}, Methods: base.Methods}
	d = diffICP(base, reordered)
	if d.MatchesExpert || !d.OrderChanged || len(d.MethodChanges) != 0 {
		t.Fatalf("order change diff wrong: %+v", d)
	}

	remethod := plan.ICP{Order: base.Order, Methods: []plan.JoinMethod{plan.MergeJoin, plan.NestLoop}}
	d = diffICP(base, remethod)
	if d.MatchesExpert || d.OrderChanged || len(d.MethodChanges) != 1 {
		t.Fatalf("method change diff wrong: %+v", d)
	}
	want := "join 1 (b): expert MergeJoin -> served HashJoin"
	if d.MethodChanges[0] != want {
		t.Fatalf("method change = %q, want %q", d.MethodChanges[0], want)
	}
}

// TestHTTPExecuteInterleaveRing is the regression test for the execute:true
// ring accounting: one-call and two-call serves interleaved through a small
// ring must agree on capacity — consumed slots popping off is bookkeeping
// (no 410, no expired count), execute rows stay explainable, and their
// serve_ids answer 404 (already reported) to feedback, never 410.
func TestHTTPExecuteInterleaveRing(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100
	blue, green := newFake("blue"), newFake("green")
	lp := New(cfg, blue, green, nil)
	h := NewHTTPServer(lp, HTTPOptions{
		MaxPending: 4,
		Resolve: func(id string) *query.Query {
			v, _ := strconv.ParseInt(strings.TrimPrefix(id, "q"), 10, 64)
			return fq(v)
		},
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	var execIDs []string
	for i := 1; i <= 6; i++ {
		// One-call turn: recorded server-side, slot pre-consumed.
		_, ex := postJSON(t, ts.URL+"/v1/optimize", `{"query_id": "q`+strconv.Itoa(i)+`", "execute": true}`)
		sid, _ := ex["serve_id"].(string)
		if sid == "" || ex["latency_ms"] != float64(10) {
			t.Fatalf("execute row %d missing serve_id/latency: %v", i, ex)
		}
		execIDs = append(execIDs, sid)
		// Two-call turn: feedback promptly, before any eviction pressure.
		_, row := postJSON(t, ts.URL+"/v1/optimize", `{"query_id": "q`+strconv.Itoa(100+i)+`"}`)
		if code, fb := postJSON(t, ts.URL+"/v1/feedback",
			`{"serve_id": "`+row["serve_id"].(string)+`", "latency_ms": 5}`); code != http.StatusOK {
			t.Fatalf("interleaved feedback %d: %d %v", i, code, fb)
		}
	}
	// Every slot was consumed when it left the ring: nothing expired, the
	// 410 horizon never moved.
	if _, st := getJSON(t, ts.URL+"/v1/stats"); st["expired_serve_ids"] != float64(0) {
		t.Fatalf("consumed slots counted as expired: %v", st["expired_serve_ids"])
	}
	if _, st := getJSON(t, ts.URL+"/v1/stats"); st["pending_feedback"] != float64(0) {
		t.Fatalf("pending after all feedback: %v", st["pending_feedback"])
	}
	// Recent execute serves stay explainable with their recorded latency
	// (older ones may have aged out of the consumed ring — silently).
	last := execIDs[len(execIDs)-1]
	code, ex := getJSON(t, ts.URL+"/v1/explain/"+last)
	if code != http.StatusOK || ex["recorded"] != true || ex["latency_ms"] != float64(10) {
		t.Fatalf("execute serve not explainable: %d %v", code, ex)
	}
	// Feedback on an execute row is a duplicate report: 404, not 410.
	if code, _ := postJSON(t, ts.URL+"/v1/feedback", `{"serve_id": "`+last+`", "latency_ms": 5}`); code != http.StatusNotFound {
		t.Fatalf("feedback on execute row status %d, want 404", code)
	}

	// Genuine expiry still works after the interleave: overflow the ring
	// with unreported serves and the oldest flips to 410.
	var firstLive string
	for i := 1; i <= 5; i++ {
		_, row := postJSON(t, ts.URL+"/v1/optimize", `{"query_id": "q`+strconv.Itoa(200+i)+`"}`)
		if i == 1 {
			firstLive = row["serve_id"].(string)
		}
	}
	if code, _ := postJSON(t, ts.URL+"/v1/feedback", `{"serve_id": "`+firstLive+`", "latency_ms": 5}`); code != http.StatusGone {
		t.Fatalf("evicted live serve status %d, want 410", code)
	}
	if _, st := getJSON(t, ts.URL+"/v1/stats"); st["expired_serve_ids"] != float64(1) {
		t.Fatalf("expired = %v, want exactly the one live eviction", st["expired_serve_ids"])
	}
}
