package service

// The replication wire surface. On a leader:
//
//	GET  /v1/repl/manifest          — the current recovery point (404 until
//	                                  the first checkpoint lands, 412 without
//	                                  a store)
//	GET  /v1/repl/checkpoint/{name} — the named sealed checkpoint blob
//	POST /v1/repl/feedback          — feedback forwarded from a follower, in
//	                                  durable identity form (query ×
//	                                  incomplete plan × step × latency):
//	                                  serve_ids never cross processes, so the
//	                                  forwarded form carries what WAL records
//	                                  carry and the leader rebuilds the
//	                                  executed candidate deterministically
//
// On a follower the same paths answer 403 (a follower cannot be a
// replication source — it has no store — and does not accept writes).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
)

// replFeedbackRequest is the POST /v1/repl/feedback body: one executed
// plan's durable identity plus the observed latency — the cross-process
// form of /v1/feedback.
type replFeedbackRequest struct {
	Query     wireQuery `json:"query"`
	Order     []string  `json:"order"`
	Methods   []string  `json:"methods"`
	Step      int       `json:"step"`
	LatencyMs float64   `json:"latency_ms"`
}

// wireMethods maps plan-method wire names (the same strings planJSON
// emits) back to join methods.
var wireMethods = map[string]plan.JoinMethod{
	"HashJoin": plan.HashJoin, "MergeJoin": plan.MergeJoin, "NestLoop": plan.NestLoop,
}

func (req replFeedbackRequest) toICP() (plan.ICP, error) {
	icp := plan.ICP{Order: append([]string(nil), req.Order...)}
	if len(req.Methods) != 0 && len(req.Methods) != len(req.Order)-1 {
		return plan.ICP{}, fmt.Errorf("methods count %d does not match order length %d", len(req.Methods), len(req.Order))
	}
	for _, name := range req.Methods {
		m, ok := wireMethods[name]
		if !ok {
			return plan.ICP{}, fmt.Errorf("unknown join method %q", name)
		}
		icp.Methods = append(icp.Methods, m)
	}
	return icp, nil
}

func (s *HTTPServer) handleReplManifest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.opts.Follower {
		writeFollowerErr(w, s.opts.LeaderAddr, "checkpoint replication")
		return
	}
	m, ok, err := s.lp.ReplManifest()
	if err != nil {
		writeErr(w, http.StatusPreconditionFailed, "no durability store attached (run with -state-dir)")
		return
	}
	if !ok {
		writeErr(w, http.StatusNotFound, "no checkpoint published yet")
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *HTTPServer) handleReplCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.opts.Follower {
		writeFollowerErr(w, s.opts.LeaderAddr, "checkpoint replication")
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/v1/repl/checkpoint/")
	blob, err := s.lp.ReplCheckpointBlob(name)
	if err != nil {
		if errors.Is(err, fosserr.ErrNoStore) {
			writeErr(w, http.StatusPreconditionFailed, "no durability store attached (run with -state-dir)")
			return
		}
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

func (s *HTTPServer) handleReplFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.opts.Follower {
		writeFollowerErr(w, s.opts.LeaderAddr, "feedback ingestion")
		return
	}
	var req replFeedbackRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.LatencyMs < 0 {
		writeErr(w, http.StatusBadRequest, "latency_ms must be >= 0")
		return
	}
	q, err := req.Query.toQuery()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad query spec: "+err.Error())
		return
	}
	icp, err := req.toICP()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad plan identity: "+err.Error())
		return
	}
	// Rebuild the executed candidate from its durable identity, exactly as
	// WAL replay does — the rebuilt encoding is bit-identical to what a
	// local serve would have produced, so forwarded feedback trains the
	// leader the same way local feedback does.
	pe, err := s.lp.Active().RebuildEval(q, icp, req.Step)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "rebuild plan: "+err.Error())
		return
	}
	if !s.lp.Record(q, pe, req.LatencyMs) {
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Sprintf("loop draining; feedback not recorded: %v", fosserr.ErrLoopClosed))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"recorded": true, "epoch": s.lp.Epoch()})
}

// writeFollowerErr answers a write addressed to a follower: 403 with the
// leader's address in the body so clients (and the follower's own feedback
// forwarder) know where writes go.
func writeFollowerErr(w http.ResponseWriter, leader, what string) {
	writeJSON(w, http.StatusForbidden, map[string]any{
		"error":  fmt.Sprintf("%v: %s happens on the leader", fosserr.ErrNotLeader, what),
		"leader": leader,
	})
}

// NewFeedbackForwarder builds the follower-side feedback forwarder: it
// POSTs executed-plan feedback to {base}/repl/feedback in durable identity
// form. base is the leader's URL prefix up to "/repl/..." — the same shape
// repl.NewHTTPSource takes ("http://leader:8475/v1/t/{tenant}" on a fleet,
// "http://leader:8475/v1" single-tenant).
func NewFeedbackForwarder(base string) func(ctx context.Context, q *query.Query, pe *planner.PlanEval, latencyMs float64) error {
	client := &http.Client{Timeout: 10 * time.Second}
	return func(ctx context.Context, q *query.Query, pe *planner.PlanEval, latencyMs float64) error {
		req := replFeedbackRequest{
			Query:     toWireQuery(q),
			Order:     append([]string(nil), pe.ICP.Order...),
			Step:      pe.Step,
			LatencyMs: latencyMs,
		}
		for _, m := range pe.ICP.Methods {
			req.Methods = append(req.Methods, m.String())
		}
		return postForward(ctx, client, base+"/repl/feedback", req)
	}
}

// toWireQuery is wireQuery.toQuery's inverse — the forwarded feedback's
// query spec.
func toWireQuery(q *query.Query) wireQuery {
	wq := wireQuery{ID: q.ID}
	for _, t := range q.Tables {
		wq.Tables = append(wq.Tables, wireTable{Table: t.Table, Alias: t.Alias})
	}
	for _, j := range q.Joins {
		wq.Joins = append(wq.Joins, wireJoin{LA: j.LA, LC: j.LC, RA: j.RA, RC: j.RC})
	}
	for _, f := range q.Filters {
		wq.Filters = append(wq.Filters, wireFilter{
			Alias: f.Alias, Col: f.Col, Op: wireOpName(f.Op), Val: f.Val, Hi: f.Hi, Set: f.Set,
		})
	}
	return wq
}

func wireOpName(op query.CmpOp) string {
	for name, o := range wireOps {
		if o == op {
			return name
		}
	}
	return ""
}

// postForward POSTs a JSON body and classifies the response: 2xx is
// success, anything else surfaces the upstream's error text.
func postForward(ctx context.Context, client *http.Client, url string, body any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("forward to %s: %s: %s", url, resp.Status, msg)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
