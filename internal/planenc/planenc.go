// Package planenc turns complete plans into the feature tensors the state
// network consumes, following the paper's QueryFormer-derived encoding:
// per-node features (operator, table, join/predicate columns, selectivity
// bucket), node height, the four-way node structure type (left / right /
// no-sibling / root), and a reachability attention mask that zeroes
// attention between nodes that are not ancestor/descendant of each other.
// Histogram and sample bitmaps are intentionally omitted, as in the paper.
package planenc

import (
	"math"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/plan"
)

// Operator ids for the encoding (scan methods and join methods share one
// vocabulary).
const (
	OpSeqScan = iota
	OpIndexScan
	OpHashJoin
	OpMergeJoin
	OpNestLoop
	NumOps
)

// Node structure types, per the paper.
const (
	StructLeft = iota
	StructRight
	StructNoSibling
	StructRoot
	NumStructs
)

// MaxHeight bounds the height vocabulary.
const MaxHeight = 24

// RowBuckets is the vocabulary size of the log-scale cardinality bucket.
const RowBuckets = 12

// Encoded is the tensor-ready form of one plan.
type Encoded struct {
	Ops     []int  // operator id per node
	Tables  []int  // table id per node (capTables = "none")
	Columns []int  // join/index column id per node (capCols = "none")
	RowBkt  []int  // log10 bucket of estimated rows per node
	Heights []int  // height per node (clamped to MaxHeight-1)
	Structs []int  // structure type per node
	Mask    []bool // seq*seq reachability mask (true = may attend)
	N       int    // number of nodes
}

// Encoder holds the schema vocabularies. NumTables/NumCols count the ids
// assigned so far; CapTables/CapCols are the embedding-vocabulary capacities
// model tensors are sized from — NumTables/NumCols plus any headroom
// reserved for tables and columns added by later DDL. The "none" bucket sits
// at the cap, so a zero-headroom encoder is bit-identical to the encoding
// before capacities existed.
type Encoder struct {
	TableIDs  map[string]int
	ColumnIDs map[string]int
	NumTables int
	NumCols   int
	CapTables int
	CapCols   int
}

// NewEncoder builds an encoder for one schema with zero headroom.
func NewEncoder(schema *catalog.Schema) *Encoder {
	t := schema.TableIDs()
	c := schema.ColumnIDs()
	return &Encoder{TableIDs: t, ColumnIDs: c, NumTables: len(t), NumCols: len(c), CapTables: len(t), CapCols: len(c)}
}

// WithHeadroom reserves extra vocabulary slots for schema evolution: up to
// tables future tables and cols future columns can receive real embedding
// ids via Extend instead of folding into the none bucket. Returns the
// encoder for chaining. Must be called before the model is sized.
func (e *Encoder) WithHeadroom(tables, cols int) *Encoder {
	if tables > 0 {
		e.CapTables += tables
	}
	if cols > 0 {
		e.CapCols += cols
	}
	return e
}

// Extend ingests an evolved schema: tables and columns present in the schema
// but absent from the vocabularies are assigned the next free ids in the
// schema's deterministic Order, so every replica applying the same DDL log
// derives the identical mapping. Ids are never moved or reused — entries for
// dropped tables stay in the map and simply stop being looked up, so plans
// encoded before the DDL keep their exact features. Additions past the
// capacity fold into the none bucket (encodable, just not distinguished), so
// Extend never changes tensor shapes. Returns the id counts assigned.
func (e *Encoder) Extend(schema *catalog.Schema) (newTables, newCols int) {
	for _, tn := range schema.Order {
		if _, ok := e.TableIDs[tn]; !ok && e.NumTables < e.CapTables {
			e.TableIDs[tn] = e.NumTables
			e.NumTables++
			newTables++
		}
		for _, c := range schema.Tables[tn].Columns {
			key := tn + "." + c.Name
			if _, ok := e.ColumnIDs[key]; !ok && e.NumCols < e.CapCols {
				e.ColumnIDs[key] = e.NumCols
				e.NumCols++
				newCols++
			}
		}
	}
	return newTables, newCols
}

// rowBucket maps an estimated cardinality to a log10 bucket in [0,RowBuckets).
func rowBucket(rows float64) int {
	if rows < 1 {
		rows = 1
	}
	b := int(math.Log10(rows))
	if b >= RowBuckets {
		b = RowBuckets - 1
	}
	return b
}

// Encode featurizes a complete plan.
func (e *Encoder) Encode(cp *plan.CP) *Encoded {
	type item struct {
		n      *plan.Node
		parent int
		strct  int
	}
	var nodes []item
	var walk func(n *plan.Node, parent, strct int)
	walk = func(n *plan.Node, parent, strct int) {
		idx := len(nodes)
		nodes = append(nodes, item{n, parent, strct})
		if !n.IsScan() {
			ls, rs := StructLeft, StructRight
			if n.Right == nil {
				ls = StructNoSibling
			}
			if n.Left != nil {
				walk(n.Left, idx, ls)
			}
			if n.Right != nil {
				walk(n.Right, idx, rs)
			}
		}
	}
	walk(cp.Root, -1, StructRoot)

	n := len(nodes)
	enc := &Encoded{
		Ops:     make([]int, n),
		Tables:  make([]int, n),
		Columns: make([]int, n),
		RowBkt:  make([]int, n),
		Heights: make([]int, n),
		Structs: make([]int, n),
		Mask:    make([]bool, n*n),
		N:       n,
	}

	heights := make([]int, n)
	var computeHeight func(i int) int
	children := make([][]int, n)
	for i, it := range nodes {
		if it.parent >= 0 {
			children[it.parent] = append(children[it.parent], i)
		}
	}
	computeHeight = func(i int) int {
		if len(children[i]) == 0 {
			heights[i] = 0
			return 0
		}
		h := 0
		for _, c := range children[i] {
			if ch := computeHeight(c); ch+1 > h {
				h = ch + 1
			}
		}
		heights[i] = h
		return h
	}
	computeHeight(0)

	for i, it := range nodes {
		nd := it.n
		enc.Structs[i] = it.strct
		h := heights[i]
		if h >= MaxHeight {
			h = MaxHeight - 1
		}
		enc.Heights[i] = h
		enc.RowBkt[i] = rowBucket(nd.EstRows)
		if nd.IsScan() {
			if nd.Scan == plan.IndexScan {
				enc.Ops[i] = OpIndexScan
			} else {
				enc.Ops[i] = OpSeqScan
			}
			tid, ok := e.TableIDs[cp.Q.TableOf(nd.Alias)]
			if !ok {
				tid = e.CapTables
			}
			enc.Tables[i] = tid
			enc.Columns[i] = e.CapCols
			if nd.IdxCol != "" {
				if cid, ok := e.ColumnIDs[cp.Q.TableOf(nd.Alias)+"."+nd.IdxCol]; ok {
					enc.Columns[i] = cid
				}
			}
		} else {
			switch nd.Method {
			case plan.HashJoin:
				enc.Ops[i] = OpHashJoin
			case plan.MergeJoin:
				enc.Ops[i] = OpMergeJoin
			case plan.NestLoop:
				enc.Ops[i] = OpNestLoop
			}
			enc.Tables[i] = e.CapTables
			enc.Columns[i] = e.CapCols
			if len(nd.Preds) > 0 {
				p := nd.Preds[0]
				if cid, ok := e.ColumnIDs[cp.Q.TableOf(p.LA)+"."+p.LC]; ok {
					enc.Columns[i] = cid
				}
			}
		}
	}

	// Reachability mask: i may attend to j iff j is an ancestor or
	// descendant of i (or i itself).
	anc := make([][]bool, n)
	for i := range anc {
		anc[i] = make([]bool, n)
		for j := nodes[i].parent; j >= 0; j = nodes[j].parent {
			anc[i][j] = true
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || anc[i][j] || anc[j][i] {
				enc.Mask[i*n+j] = true
			}
		}
	}
	return enc
}
