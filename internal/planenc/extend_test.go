package planenc

import (
	"reflect"
	"testing"

	"github.com/foss-db/foss/internal/engine/catalog"
)

// TestZeroHeadroomBitIdentical: an encoder built without headroom must
// produce the exact encoding it did before capacities existed — the none
// bucket stays at NumTables/NumCols.
func TestZeroHeadroomBitIdentical(t *testing.T) {
	enc := NewEncoder(testSchema())
	if enc.CapTables != enc.NumTables || enc.CapCols != enc.NumCols {
		t.Fatalf("zero headroom caps: %d/%d vs %d/%d", enc.CapTables, enc.CapCols, enc.NumTables, enc.NumCols)
	}
	e := enc.Encode(testCP())
	// join nodes (pre-order 0,1) carry the none table id
	if e.Tables[0] != enc.NumTables || e.Tables[1] != enc.NumTables {
		t.Fatalf("none bucket moved: %v (numTables=%d)", e.Tables, enc.NumTables)
	}
}

// TestExtendDeterministic: two encoders extended with the same evolved
// schema assign identical ids — the property replica convergence rests on.
func TestExtendDeterministic(t *testing.T) {
	evolved, err := testSchema().Apply([]catalog.DDL{
		{Kind: catalog.DDLAddTable, Table: "t4", Columns: []catalog.Column{{Name: "id", Indexed: true}, {Name: "y"}}},
		{Kind: catalog.DDLAddColumn, Table: "t1", Column: "z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := NewEncoder(testSchema()).WithHeadroom(2, 4)
	b := NewEncoder(testSchema()).WithHeadroom(2, 4)
	at, ac := a.Extend(evolved)
	bt, bc := b.Extend(evolved)
	if at != bt || ac != bc || at != 1 || ac != 3 {
		t.Fatalf("assigned (%d,%d) vs (%d,%d)", at, ac, bt, bc)
	}
	if !reflect.DeepEqual(a.TableIDs, b.TableIDs) || !reflect.DeepEqual(a.ColumnIDs, b.ColumnIDs) {
		t.Fatal("two replicas derived different vocabularies from the same DDL")
	}
	if a.TableIDs["t4"] != 3 {
		t.Fatalf("t4 id = %d, want 3 (next free)", a.TableIDs["t4"])
	}
	// Re-extending with the same schema is idempotent.
	if nt, nc := a.Extend(evolved); nt != 0 || nc != 0 {
		t.Fatalf("re-extend assigned (%d,%d)", nt, nc)
	}
}

// TestExtendOverflowFoldsToNone: additions past the capacity fold into the
// none bucket instead of resizing tensors.
func TestExtendOverflowFoldsToNone(t *testing.T) {
	evolved, err := testSchema().Apply([]catalog.DDL{
		{Kind: catalog.DDLAddTable, Table: "t4", Columns: []catalog.Column{{Name: "id"}}},
		{Kind: catalog.DDLAddTable, Table: "t5", Columns: []catalog.Column{{Name: "id"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(testSchema()).WithHeadroom(1, 1)
	nt, _ := enc.Extend(evolved)
	if nt != 1 {
		t.Fatalf("assigned %d table ids with headroom 1", nt)
	}
	if enc.NumTables != enc.CapTables {
		t.Fatal("capacity not exhausted")
	}
	if _, ok := enc.TableIDs["t5"]; ok {
		t.Fatal("overflow table got a real id")
	}
	// Dropped tables keep their ids: encodings of old plans never change.
	shrunk, err := evolved.Apply([]catalog.DDL{{Kind: catalog.DDLDropTable, Table: "t1"}})
	if err != nil {
		t.Fatal(err)
	}
	before := enc.TableIDs["t2"]
	enc.Extend(shrunk)
	if enc.TableIDs["t2"] != before {
		t.Fatal("extend reassigned a live id")
	}
	if _, ok := enc.TableIDs["t1"]; !ok {
		t.Fatal("dropped table's id must remain (ids are never reused)")
	}
}
