package planenc

import (
	"testing"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/query"
)

func testSchema() *catalog.Schema {
	s := catalog.NewSchema()
	s.AddTable(catalog.NewTable("t1", catalog.Column{Name: "id", Indexed: true}, catalog.Column{Name: "x"}))
	s.AddTable(catalog.NewTable("t2", catalog.Column{Name: "id", Indexed: true}, catalog.Column{Name: "fk", Indexed: true}))
	s.AddTable(catalog.NewTable("t3", catalog.Column{Name: "id", Indexed: true}))
	return s
}

func testCP() *plan.CP {
	q := &query.Query{
		ID: "enc",
		Tables: []query.TableRef{
			{Table: "t1", Alias: "a"}, {Table: "t2", Alias: "b"}, {Table: "t3", Alias: "c"},
		},
		Joins: []query.JoinPred{
			{LA: "b", LC: "fk", RA: "a", RC: "id"},
			{LA: "b", LC: "id", RA: "c", RC: "id"},
		},
	}
	leafA := &plan.Node{Alias: "a", Scan: plan.IndexScan, IdxCol: "id", EstRows: 10}
	leafB := &plan.Node{Alias: "b", Scan: plan.SeqScan, EstRows: 1000}
	leafC := &plan.Node{Alias: "c", Scan: plan.SeqScan, EstRows: 100}
	j1 := &plan.Node{Method: plan.HashJoin, Left: leafA, Right: leafB, EstRows: 5000,
		Preds: []query.JoinPred{q.Joins[0]}}
	j2 := &plan.Node{Method: plan.NestLoop, Left: j1, Right: leafC, EstRows: 50,
		Preds: []query.JoinPred{q.Joins[1]}}
	return &plan.CP{Root: j2, Q: q}
}

func TestEncodeShapes(t *testing.T) {
	enc := NewEncoder(testSchema())
	e := enc.Encode(testCP())
	if e.N != 5 {
		t.Fatalf("want 5 nodes, got %d", e.N)
	}
	for _, arr := range [][]int{e.Ops, e.Tables, e.Columns, e.RowBkt, e.Heights, e.Structs} {
		if len(arr) != e.N {
			t.Fatalf("feature array length %d != %d", len(arr), e.N)
		}
	}
	if len(e.Mask) != e.N*e.N {
		t.Fatalf("mask length %d != %d", len(e.Mask), e.N*e.N)
	}
}

func TestEncodeStructureTypes(t *testing.T) {
	enc := NewEncoder(testSchema())
	e := enc.Encode(testCP())
	// pre-order: j2(root), j1(left), a(left), b(right), c(right)
	want := []int{StructRoot, StructLeft, StructLeft, StructRight, StructRight}
	for i, w := range want {
		if e.Structs[i] != w {
			t.Fatalf("node %d struct = %d, want %d", i, e.Structs[i], w)
		}
	}
}

func TestEncodeHeights(t *testing.T) {
	enc := NewEncoder(testSchema())
	e := enc.Encode(testCP())
	// j2 height 2, j1 height 1, leaves 0
	want := []int{2, 1, 0, 0, 0}
	for i, w := range want {
		if e.Heights[i] != w {
			t.Fatalf("node %d height = %d, want %d", i, e.Heights[i], w)
		}
	}
}

func TestEncodeOps(t *testing.T) {
	enc := NewEncoder(testSchema())
	e := enc.Encode(testCP())
	want := []int{OpNestLoop, OpHashJoin, OpIndexScan, OpSeqScan, OpSeqScan}
	for i, w := range want {
		if e.Ops[i] != w {
			t.Fatalf("node %d op = %d, want %d", i, e.Ops[i], w)
		}
	}
}

func TestReachabilityMask(t *testing.T) {
	enc := NewEncoder(testSchema())
	e := enc.Encode(testCP())
	n := e.N
	at := func(i, j int) bool { return e.Mask[i*n+j] }
	// self-attention everywhere
	for i := 0; i < n; i++ {
		if !at(i, i) {
			t.Fatalf("node %d cannot attend to itself", i)
		}
	}
	// root (0) reaches everything
	for j := 0; j < n; j++ {
		if !at(0, j) || !at(j, 0) {
			t.Fatalf("root reachability broken at %d", j)
		}
	}
	// leaves a(2) and b(3) are siblings: NOT mutually reachable
	if at(2, 3) || at(3, 2) {
		t.Fatal("siblings must be masked from each other")
	}
	// leaf a(2) and leaf c(4) are in different subtrees: masked
	if at(2, 4) || at(4, 2) {
		t.Fatal("cousins must be masked from each other")
	}
	// mask must be symmetric (ancestor/descendant relation is)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if at(i, j) != at(j, i) {
				t.Fatalf("mask asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestRowBucketMonotone(t *testing.T) {
	prev := -1
	for _, rows := range []float64{0, 1, 9, 99, 1e3, 1e6, 1e15} {
		b := rowBucket(rows)
		if b < prev {
			t.Fatalf("rowBucket not monotone at %f", rows)
		}
		if b < 0 || b >= RowBuckets {
			t.Fatalf("rowBucket out of range: %d", b)
		}
		prev = b
	}
}

func TestEncoderVocabularies(t *testing.T) {
	enc := NewEncoder(testSchema())
	if enc.NumTables != 3 {
		t.Fatalf("NumTables = %d", enc.NumTables)
	}
	if enc.NumCols != 5 {
		t.Fatalf("NumCols = %d", enc.NumCols)
	}
	// unknown table on a scan maps to the "none" bucket rather than panicking
	cp := testCP()
	cp.Q.Tables[0].Table = "nonexistent"
	e := enc.Encode(cp)
	if e.Tables[2] != enc.NumTables {
		t.Fatalf("unknown table should map to %d, got %d", enc.NumTables, e.Tables[2])
	}
}
