package shard

// The live-creation concurrency suite: booting a tenant takes real time
// (workload generation plus training), and the fleet keeps serving scrapes
// throughout. Two contracts matter — a duplicate concurrent create loses
// fast instead of double-booting, and every aggregate read (/v1/stats,
// /metrics) is zero-or-fully: a tenant mid-boot is invisible, a tenant that
// appears at all appears with its complete row. Run with -race: this is also
// the data-race soak for create-vs-scrape.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/service"
)

// TestConcurrentDuplicateCreate: two racing creates of one name — exactly
// one boots, the loser is refused as a duplicate (ErrBadConfig) by the
// name reservation, before it spends anything on a second boot.
func TestConcurrentDuplicateCreate(t *testing.T) {
	cfg := tinyRouterConfig("")
	router, err := NewRouter(context.Background(), cfg, []TenantSpec{{Name: "acme"}})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close(context.Background())

	errs := make(chan error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := router.Create(context.Background(), TenantSpec{Name: "globex", Backend: "gaussim"})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)

	var won, lost int
	for err := range errs {
		switch {
		case err == nil:
			won++
		case errors.Is(err, fosserr.ErrBadConfig):
			lost++
		default:
			t.Fatalf("unexpected create error: %v", err)
		}
	}
	if won != 1 || lost != 1 {
		t.Fatalf("winners=%d losers=%d, want exactly 1/1", won, lost)
	}
	// The winner's shard is routable and serves.
	sh, err := router.Get("globex")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Serve(context.Background(), sh.W.Train[0]); err != nil {
		t.Fatal(err)
	}
}

// TestCreateWhileScrape hammers the aggregate surfaces while a live POST
// /v1/tenants boots a second shard. Every /v1/stats body must be internally
// consistent (totals.Tenants == listed rows, each row complete), every
// /metrics page must be a complete exposition (any tenant that appears has
// its serve counter series), and the new tenant must never surface
// half-booted on either.
func TestCreateWhileScrape(t *testing.T) {
	cfg := tinyRouterConfig("")
	router, err := NewRouter(context.Background(), cfg, []TenantSpec{{Name: "acme"}})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close(context.Background())

	mux := service.NewMultiHTTPServer(router)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	// Traffic on acme so the scrapes have moving counters to read.
	acme, _ := router.Get("acme")
	if _, _, err := acme.Step(context.Background(), acme.W.Train[0]); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Error(err)
			return ""
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s status %d: %s", path, resp.StatusCode, body)
			return ""
		}
		return string(body)
	}

	checkStats := func(body string) (sawNew bool) {
		var agg struct {
			Tenants map[string]struct {
				Backend string          `json:"backend"`
				Stats   json.RawMessage `json:"stats"`
				Cache   json.RawMessage `json:"cache"`
			} `json:"tenants"`
			Totals struct {
				Tenants int `json:"tenants"`
			} `json:"totals"`
		}
		if err := json.Unmarshal([]byte(body), &agg); err != nil {
			t.Errorf("aggregate stats not parseable mid-create: %v\n%s", err, body)
			return false
		}
		if agg.Totals.Tenants != len(agg.Tenants) {
			t.Errorf("totals.tenants=%d but %d rows listed", agg.Totals.Tenants, len(agg.Tenants))
		}
		// Zero-or-fully: every listed row is a complete snapshot — a tenant
		// mid-boot must not appear as a stub.
		for name, row := range agg.Tenants {
			if row.Backend == "" || len(row.Stats) == 0 || len(row.Cache) == 0 {
				t.Errorf("tenant %s listed with an incomplete row: %+v", name, row)
			}
		}
		_, sawNew = agg.Tenants["globex"]
		return sawNew
	}

	checkMetrics := func(body string) (sawNew bool) {
		if !strings.Contains(body, "# TYPE foss_served_total counter") {
			t.Errorf("scrape page missing its families:\n%.400s", body)
		}
		if !strings.Contains(body, `tenant="globex"`) {
			return false
		}
		// Zero-or-fully: once globex appears anywhere on the page, its
		// complete row is there — the serve counter series included.
		if !strings.Contains(body, `foss_served_total{tenant="globex"}`) {
			t.Errorf("globex labeled on the page without its serve series:\n%s", body)
		}
		return true
	}

	done := make(chan struct{})
	var scrapes int
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if body := get("/v1/stats"); body != "" {
				checkStats(body)
			}
			if body := get("/metrics"); body != "" {
				checkMetrics(body)
			}
			scrapes++
		}
	}()

	// The live create, through the wire path the operator would use.
	resp, err := http.Post(ts.URL+"/v1/tenants", "application/json",
		strings.NewReader(`{"tenant": "globex", "backend": "gaussim"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	close(done)
	scraper.Wait()

	if scrapes == 0 {
		t.Fatal("no scrape overlapped the create; the soak proved nothing")
	}

	// Post-create the new tenant is fully visible on both surfaces.
	if !checkStats(get("/v1/stats")) {
		t.Fatal("globex missing from aggregate stats after create returned")
	}
	if !checkMetrics(get("/metrics")) {
		t.Fatal("globex missing from aggregate metrics after create returned")
	}
	// And serves on its scoped endpoint.
	sh, err := router.Get("globex")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := http.Post(ts.URL+"/v1/t/globex/optimize", "application/json",
		strings.NewReader(`{"query_id": "`+sh.W.Train[0].ID+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("new tenant optimize status %d", r2.StatusCode)
	}
}
