package shard

// Follower integration: a follower router boots from the leader's
// checkpoint (shared state dir or the leader's wire surface), serves the
// leader's exact model, refuses writes, tails new generations, and relays
// feedback back to the leader.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/service"
	"github.com/foss-db/foss/internal/store"
)

// followerConfig derives a follower router config from a leader's.
func followerConfig(stateDir, leaderAddr string) Config {
	cfg := tinyRouterConfig(stateDir)
	cfg.CheckpointOnBoot = false
	cfg.Role = "follower"
	cfg.LeaderAddr = leaderAddr
	cfg.ReplInterval = 30 * time.Millisecond
	cfg.ReplBootTimeout = 30 * time.Second
	return cfg
}

// TestFollowerSharedDirReplication: follower over the leader's state dir —
// identical serving at boot, 403 writes, and hot-swap of a later
// generation within the tail interval.
func TestFollowerSharedDirReplication(t *testing.T) {
	dir := t.TempDir()
	leaderR, err := NewRouter(context.Background(), tinyRouterConfig(dir), []TenantSpec{{Name: "acme"}})
	if err != nil {
		t.Fatal(err)
	}
	defer leaderR.Close(context.Background())
	leadSh, _ := leaderR.Get("acme")
	q := leadSh.W.Test[0]
	leadRes, err := leadSh.Serve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}

	folR, err := NewRouter(context.Background(), followerConfig(dir, ""), []TenantSpec{{Name: "acme"}})
	if err != nil {
		t.Fatal(err)
	}
	defer folR.Close(context.Background())
	folSh, _ := folR.Get("acme")
	if folSh.Tailer == nil || folSh.Store != nil || folSh.Recovery.Recovered {
		t.Fatalf("follower shape wrong: tailer=%v store=%v recovery=%+v", folSh.Tailer, folSh.Store, folSh.Recovery)
	}

	// Same model, same generation, same decision.
	folRes, err := folSh.Serve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if folRes.Eval.ICP.Key() != leadRes.Eval.ICP.Key() || folRes.Epoch != leadRes.Epoch {
		t.Fatalf("follower serves (%s, epoch %d), leader (%s, epoch %d)",
			folRes.Eval.ICP.Key(), folRes.Epoch, leadRes.Eval.ICP.Key(), leadRes.Epoch)
	}

	// Writes are refused with no leader address configured (dir transport).
	ts := httptest.NewServer(folSh.HTTP)
	defer ts.Close()
	for _, c := range []struct{ path, body string }{
		{"/v1/checkpoint", `{}`},
		{"/v1/feedback", `{"serve_id": "s1", "latency_ms": 1}`},
	} {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s on follower: %d", c.path, resp.StatusCode)
		}
	}

	// The leader publishes a new generation; the tailer hot-swaps it.
	model, err := leadSh.Sys.Save()
	if err != nil {
		t.Fatal(err)
	}
	next := leadRes.Epoch + 1
	if _, err := leadSh.Store.WriteCheckpoint(leadSh.Spec.Backend, store.Checkpoint{Model: model, Epoch: next, WALSeq: 999}); err != nil {
		t.Fatal(err)
	}
	// Wait on the tailer's own stats, not the online loop's epoch: the
	// epoch bumps inside the apply callback, a beat before the tailer
	// stamps LastAppliedEpoch/AppliedSwaps.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := folSh.Tailer.Stats()
		if st.LastAppliedEpoch == next && st.AppliedSwaps >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never applied epoch %d (stats %+v)", next, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := folSh.Sys.Online().Epoch(); got != next {
		t.Fatalf("follower epoch %d after applied swap, want %d", got, next)
	}
}

// TestFollowerCatalogReplication: a DDL applied on the leader reaches the
// follower through ordinary checkpoint replication — the post-DDL generation
// checkpoints immediately, the tailer applies it, and the follower's live
// catalog lands on the leader's epoch without a restart.
func TestFollowerCatalogReplication(t *testing.T) {
	dir := t.TempDir()
	leaderR, err := NewRouter(context.Background(), tinyRouterConfig(dir), []TenantSpec{{Name: "acme"}})
	if err != nil {
		t.Fatal(err)
	}
	defer leaderR.Close(context.Background())
	folR, err := NewRouter(context.Background(), followerConfig(dir, ""), []TenantSpec{{Name: "acme"}})
	if err != nil {
		t.Fatal(err)
	}
	defer folR.Close(context.Background())
	leadSh, _ := leaderR.Get("acme")
	folSh, _ := folR.Get("acme")
	if got := folSh.Sys.Online().CatalogEpoch(); got != 0 {
		t.Fatalf("follower boots at catalog epoch %d, want 0", got)
	}

	epoch, err := leadSh.Sys.Online().ApplyDDL([]catalog.DDL{
		{Kind: catalog.DDLAddTable, Table: "repl_evolved", Columns: []catalog.Column{{Name: "id", Indexed: true}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("leader catalog epoch %d after one DDL, want 1", epoch)
	}

	deadline := time.Now().Add(10 * time.Second)
	for folSh.Sys.Online().CatalogEpoch() != epoch {
		if time.Now().After(deadline) {
			t.Fatalf("follower catalog epoch stuck at %d, want %d (tailer %+v)",
				folSh.Sys.Online().CatalogEpoch(), epoch, folSh.Tailer.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The evolved catalog must not disturb serving: the follower still
	// answers the steady workload at the replicated generation.
	q := folSh.W.Test[0]
	res, err := folSh.Serve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Eval == nil {
		t.Fatal("follower served no plan after catalog replication")
	}
}

// TestFollowerHTTPReplicationAndForwarding: follower with no filesystem
// access replicates over the leader's /v1/t/{tenant}/repl endpoints, and
// /v1/feedback on the follower lands in the leader's learning loop.
func TestFollowerHTTPReplicationAndForwarding(t *testing.T) {
	dir := t.TempDir()
	leaderR, err := NewRouter(context.Background(), tinyRouterConfig(dir), []TenantSpec{{Name: "acme"}})
	if err != nil {
		t.Fatal(err)
	}
	defer leaderR.Close(context.Background())
	leaderSrv := httptest.NewServer(service.NewMultiHTTPServer(leaderR))
	defer leaderSrv.Close()

	folR, err := NewRouter(context.Background(), followerConfig("", leaderSrv.URL), []TenantSpec{{Name: "acme"}})
	if err != nil {
		t.Fatal(err)
	}
	defer folR.Close(context.Background())
	folSh, _ := folR.Get("acme")
	leadSh, _ := leaderR.Get("acme")

	q := folSh.W.Test[0]
	folRes, err := folSh.Serve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	leadRes, err := leadSh.Serve(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if folRes.Eval.ICP.Key() != leadRes.Eval.ICP.Key() {
		t.Fatalf("follower key %s != leader key %s", folRes.Eval.ICP.Key(), leadRes.Eval.ICP.Key())
	}

	// Serve on the follower's wire surface, report latency there, observe
	// the record on the leader.
	ts := httptest.NewServer(folSh.HTTP)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json",
		strings.NewReader(`{"query_id": "`+q.ID+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	var row struct {
		ServeID string `json:"serve_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&row); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if row.ServeID == "" {
		t.Fatal("no serve_id from follower optimize")
	}
	before := leadSh.Sys.OnlineStats().Recorded
	resp2, err := http.Post(ts.URL+"/v1/feedback", "application/json",
		strings.NewReader(`{"serve_id": "`+row.ServeID+`", "latency_ms": 7.5}`))
	if err != nil {
		t.Fatal(err)
	}
	var fb map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&fb); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || fb["forwarded"] != true {
		t.Fatalf("forwarded feedback: %d %v", resp2.StatusCode, fb)
	}
	if got := leadSh.Sys.OnlineStats().Recorded; got != before+1 {
		t.Fatalf("leader Recorded = %d, want %d", got, before+1)
	}
}
