// Package shard turns one doctor into a fleet: a Router owns N independent
// doctor shards — each a full core.System + service.Loop with its own
// optimizer backend, workload identity, plan cache, serve-id ring, and
// durable state directory (<state-dir>/<tenant>/) — and routes every
// request by tenant key. Isolation is structural, not advisory: nothing is
// shared between shards except the bounded worker pool (so K tenants never
// oversubscribe K×Workers goroutines) and the process they live in.
//
// The router carries the fleet's lifecycle. Boot trains each shard (or
// warm-starts it from its own checkpoint, exactly like a single-tenant
// restart), CreateTenant adds shards to a live fleet, and Close drains every
// shard in parallel — stop intake, await or cancel in-flight retrains, take
// a final checkpoint per tenant, release each WAL — so a SIGTERM deploy of
// the whole fleet is as lossless as PR 4 made a kill -9 of one doctor.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/foss-db/foss/internal/backend"
	"github.com/foss-db/foss/internal/core"
	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/repl"
	"github.com/foss-db/foss/internal/runtime"
	"github.com/foss-db/foss/internal/service"
	"github.com/foss-db/foss/internal/store"
	"github.com/foss-db/foss/internal/workload"
)

// TenantSpec is one shard's identity: who it serves and how its doctor is
// generated. Zero-valued fields inherit Config.Defaults, so a homogeneous
// fleet is just a list of names. Seed 0 derives a per-tenant seed from the
// default seed and the tenant name — stable across restarts and spec
// reordering, so a warm start always regenerates the exact workload the
// checkpoint was trained over.
type TenantSpec struct {
	Name     string
	Workload string  // benchmark name: job | tpcds | stack
	Backend  string  // optimizer backend: selinger | gaussim
	Scale    float64 // data scale factor
	Seed     int64   // workload + model seed
	// Leader overrides Config.LeaderAddr for this tenant on a follower
	// process ("http://host:port"); ignored on leaders. This is the
	// per-tenant leader identity: on a fleet different tenants may be led
	// from different processes.
	Leader string
}

// Config assembles a router.
type Config struct {
	// System is the per-shard doctor template; Seed is overridden by each
	// tenant's resolved spec.
	System core.Config
	// Loop is the per-shard online-loop template; Store is set per tenant
	// when StateDir is configured.
	Loop service.Config
	// Defaults fills zero-valued TenantSpec fields (Name is ignored).
	Defaults TenantSpec
	// StateDir roots the fleet's durable state: shard s lives in
	// StateDir/<tenant>/ with its own checkpoints, manifest, WAL, and lock.
	// Empty runs every shard in memory.
	StateDir string
	// Workers sizes the one shared worker pool every shard trains on.
	// 0 falls back to System.Workers.
	Workers int
	// MaxPending bounds each shard's serve-id ring (0 = service default).
	MaxPending int
	// CheckpointOnBoot writes an initial checkpoint after a cold-start
	// training run (ignored without StateDir), so a shard is durable before
	// its first request.
	CheckpointOnBoot bool
	// OnEvent, when set, receives one-line boot/drain progress strings
	// (fossd narrates them; tests leave it nil).
	OnEvent func(tenant, event string)

	// Role selects what each shard does with its model: "" or "leader"
	// trains, journals, and checkpoints as always; "follower" boots from the
	// leader's newest checkpoint, serves read-only, and tails the leader's
	// MANIFEST for hot-swaps — it never trains and never opens a writable
	// store.
	Role string
	// LeaderAddr is the default leader base URL for followers
	// ("http://host:port"); per-tenant TenantSpec.Leader overrides it. With
	// StateDir set a follower replicates through the shared filesystem
	// instead and LeaderAddr is used only for feedback forwarding.
	LeaderAddr string
	// ReplInterval is the follower's manifest poll cadence (0 = 500ms).
	ReplInterval time.Duration
	// ReplBootTimeout bounds how long a follower boot waits for the leader's
	// first checkpoint (0 = 2m).
	ReplBootTimeout time.Duration
}

// Shard is one tenant's doctor: the trained system, its workload, its wire
// surface, and (when durable) its private store.
type Shard struct {
	Spec TenantSpec
	Sys  *core.System
	W    *workload.Workload
	HTTP *service.HTTPServer
	// Store is the shard's private state directory, nil for in-memory
	// fleets. Owned by the shard: released in Close after the final
	// checkpoint.
	Store *store.Store
	// Recovery reports what the boot restored (zero value for cold starts
	// and in-memory shards).
	Recovery core.RecoveryInfo
	// Tailer is the follower's checkpoint tailer, nil on leaders.
	Tailer *repl.Tailer
	// srcClose releases the follower's replication source (the shared read
	// lock for directory sources); nil otherwise.
	srcClose func() error
}

// Serve optimizes one query on this shard's active replica.
func (sh *Shard) Serve(ctx context.Context, q *query.Query) (service.Result, error) {
	return sh.Sys.ServeContext(ctx, q)
}

// Step runs one full doctor-loop turn (Serve, Execute, Record) on the shard.
func (sh *Shard) Step(ctx context.Context, q *query.Query) (service.Result, float64, error) {
	return sh.Sys.ServeStepContext(ctx, q)
}

// Close drains the shard: intake stops, in-flight retrains finish (or are
// canceled past ctx's deadline), a final checkpoint lands, and only then is
// the store — and with it the WAL lock — released.
func (sh *Shard) Close(ctx context.Context) error {
	// Follower order: stop the tailer first (no hot-swap mid-drain), then
	// drain the loop, then release the replication source's read lock.
	if sh.Tailer != nil {
		sh.Tailer.Close()
	}
	err := sh.Sys.Close(ctx)
	if sh.Store != nil {
		if cerr := sh.Store.Close(); err == nil {
			err = cerr
		}
	}
	if sh.srcClose != nil {
		if cerr := sh.srcClose(); err == nil {
			err = cerr
		}
	}
	return err
}

// Router owns the fleet and routes by tenant key.
type Router struct {
	cfg  Config
	pool *runtime.Pool

	mu     sync.RWMutex
	shards map[string]*Shard
	// creating reserves names whose shard is still booting, so two
	// concurrent creates for one name fail fast (one boots, the other gets
	// the duplicate error immediately) instead of both paying a training run
	// and racing for the WAL lock. A reserved name is invisible to Get/Names
	// — a tenant appears exactly zero-or-fully to readers.
	creating  map[string]bool
	closed    bool
	closeOnce sync.Once
	closeErr  error

	// workloads caches generated benchmarks by (name, seed, scale):
	// tenants that share an identity share the immutable generated data
	// (queries and statistics are read-only after generation), so booting a
	// homogeneous 8-tenant fleet generates the benchmark once, not 8 times.
	wlMu      sync.Mutex
	workloads map[string]*workload.Workload
}

// NewRouter boots a fleet: one shard per spec, sequentially (training is
// already parallel inside each shard via the shared pool). On any boot
// failure the shards already up are drained and the error is returned.
func NewRouter(ctx context.Context, cfg Config, specs []TenantSpec) (*Router, error) {
	switch cfg.Role {
	case "", "leader", "follower":
	default:
		return nil, fmt.Errorf("shard: role %q (want leader or follower): %w", cfg.Role, fosserr.ErrBadConfig)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = cfg.System.Workers
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	r := &Router{
		cfg:       cfg,
		pool:      runtime.NewShared(cfg.Workers),
		shards:    map[string]*Shard{},
		creating:  map[string]bool{},
		workloads: map[string]*workload.Workload{},
	}
	for _, spec := range specs {
		if _, err := r.create(ctx, spec); err != nil {
			cctx, cancel := context.WithCancel(context.Background())
			cancel() // already-booted shards have no traffic: drain instantly
			_ = r.Close(cctx)
			return nil, fmt.Errorf("shard: boot tenant %q: %w", spec.Name, err)
		}
	}
	return r, nil
}

// Pool exposes the fleet's shared worker pool (benchmarks size against it).
func (r *Router) Pool() *runtime.Pool { return r.pool }

// Get returns the named shard, fosserr.ErrUnknownTenant when absent, or
// fosserr.ErrLoopClosed once the router is draining.
func (r *Router) Get(name string) (*Shard, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return nil, fmt.Errorf("shard: router draining: %w", fosserr.ErrLoopClosed)
	}
	sh, ok := r.shards[name]
	if !ok {
		return nil, fmt.Errorf("shard: tenant %q: %w", name, fosserr.ErrUnknownTenant)
	}
	return sh, nil
}

// Names lists the live tenants, sorted.
func (r *Router) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.shards))
	for n := range r.shards {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Create boots a new shard into the live fleet (the POST /v1/tenants path).
// The heavy lifting — workload generation, training or warm start — happens
// outside the router lock, so existing tenants keep serving while the new
// one trains; only the final registration is serialized.
func (r *Router) Create(ctx context.Context, spec TenantSpec) (*Shard, error) {
	return r.create(ctx, spec)
}

func (r *Router) create(ctx context.Context, spec TenantSpec) (*Shard, error) {
	spec = r.resolve(spec)
	if err := validateName(spec.Name); err != nil {
		return nil, err
	}
	// Reserve the name before the (long) boot: a concurrent duplicate create
	// fails fast with the duplicate error instead of double-booting and
	// colliding on the per-tenant WAL lock downstream. The reservation is
	// private to creators — Get and Names never see it, so the tenant stays
	// invisible until the fully booted shard registers below.
	r.mu.Lock()
	switch {
	case r.closed:
		r.mu.Unlock()
		return nil, fmt.Errorf("shard: router draining: %w", fosserr.ErrLoopClosed)
	case r.shards[spec.Name] != nil, r.creating[spec.Name]:
		r.mu.Unlock()
		return nil, fmt.Errorf("shard: tenant %q already exists: %w", spec.Name, fosserr.ErrBadConfig)
	}
	r.creating[spec.Name] = true
	r.mu.Unlock()
	release := func() {
		r.mu.Lock()
		delete(r.creating, spec.Name)
		r.mu.Unlock()
	}

	sh, err := r.boot(ctx, spec)
	if err != nil {
		release()
		return nil, err
	}

	r.mu.Lock()
	if r.closed {
		delete(r.creating, spec.Name)
		r.mu.Unlock()
		// The router began draining while this shard booted: tear the
		// orphan down, it never served.
		cctx, cancel := context.WithCancel(context.Background())
		cancel()
		_ = sh.Close(cctx)
		return nil, fmt.Errorf("shard: router draining: %w", fosserr.ErrLoopClosed)
	}
	r.shards[spec.Name] = sh
	delete(r.creating, spec.Name)
	r.mu.Unlock()
	return sh, nil
}

// validateName rejects tenant names that cannot be routed or safely mapped
// to a state subdirectory. The name becomes both a URL path segment
// (/v1/t/{tenant}/...) and a directory under StateDir, so it is restricted
// to a conservative charset: letters, digits, dot, underscore, dash — no
// separators (a "../x" name from POST /v1/tenants would otherwise root a
// shard's WAL outside the configured state dir), and nothing the tenant
// mux would split.
func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("shard: tenant name required: %w", fosserr.ErrBadConfig)
	}
	if len(name) > 128 {
		return fmt.Errorf("shard: tenant name longer than 128 bytes: %w", fosserr.ErrBadConfig)
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("shard: tenant name %q: only [A-Za-z0-9._-] allowed: %w", name, fosserr.ErrBadConfig)
		}
	}
	if name == "." || name == ".." {
		return fmt.Errorf("shard: tenant name %q reserved: %w", name, fosserr.ErrBadConfig)
	}
	return nil
}

// resolve fills a spec's zero fields from the defaults, deriving a stable
// per-tenant seed from the tenant name so restarts regenerate identical
// workloads regardless of spec order.
func (r *Router) resolve(spec TenantSpec) TenantSpec {
	d := r.cfg.Defaults
	if spec.Workload == "" {
		spec.Workload = d.Workload
	}
	if spec.Workload == "" {
		spec.Workload = "job"
	}
	if spec.Backend == "" {
		spec.Backend = d.Backend
	}
	if spec.Backend == "" {
		spec.Backend = "selinger"
	}
	if spec.Scale == 0 {
		spec.Scale = d.Scale
	}
	if spec.Scale == 0 {
		spec.Scale = 0.5
	}
	if spec.Seed == 0 {
		h := fnv.New32a()
		h.Write([]byte(spec.Name))
		spec.Seed = d.Seed + int64(h.Sum32()%997) + 1
	}
	return spec
}

// workload returns (generating and caching on first use) the benchmark for
// a resolved spec. The cache key is the full generation identity, so two
// tenants differing in seed or scale never share data.
func (r *Router) workload(spec TenantSpec) (*workload.Workload, error) {
	key := fmt.Sprintf("%s/%d/%g", spec.Workload, spec.Seed, spec.Scale)
	r.wlMu.Lock()
	defer r.wlMu.Unlock()
	if w, ok := r.workloads[key]; ok {
		return w, nil
	}
	w, err := workload.Load(spec.Workload, workload.Options{Seed: spec.Seed, Scale: spec.Scale})
	if err != nil {
		return nil, err
	}
	r.workloads[key] = w
	return w, nil
}

// boot assembles and trains (or warm-starts) one shard.
func (r *Router) boot(ctx context.Context, spec TenantSpec) (*Shard, error) {
	event := func(format string, args ...any) {
		if r.cfg.OnEvent != nil {
			r.cfg.OnEvent(spec.Name, fmt.Sprintf(format, args...))
		}
	}
	w, err := r.workload(spec)
	if err != nil {
		return nil, err
	}
	be, err := backend.New(spec.Backend, w.DB, w.Stats)
	if err != nil {
		return nil, err
	}
	sysCfg := r.cfg.System
	sysCfg.Seed = spec.Seed
	sys, err := core.New(w, sysCfg, core.WithBackend(be), core.WithPool(r.pool))
	if err != nil {
		return nil, err
	}

	sh := &Shard{Spec: spec, Sys: sys, W: w}
	loopCfg := r.cfg.Loop

	if r.cfg.Role == "follower" {
		return r.bootFollower(ctx, sh, loopCfg, event)
	}

	if r.cfg.StateDir != "" {
		st, err := store.Open(filepath.Join(r.cfg.StateDir, spec.Name))
		if err != nil {
			return nil, err
		}
		sh.Store = st
		if _, warm := st.Latest(); warm {
			info, err := sys.RecoverOnline(loopCfg, st)
			if err != nil {
				st.Close()
				return nil, err
			}
			sh.Recovery = info
			event("warm restart: checkpoint=%s epoch=%d buffer=%d walReplayed=%d",
				info.Checkpoint, info.Epoch, info.BufferRestored, info.WALReplayed)
		} else {
			event("cold start: training (backend=%s workload=%s scale=%g seed=%d)",
				spec.Backend, spec.Workload, spec.Scale, spec.Seed)
			if err := sys.TrainContext(ctx, nil); err != nil {
				st.Close()
				return nil, err
			}
			if _, err := sys.RecoverOnline(loopCfg, st); err != nil {
				st.Close()
				return nil, err
			}
			if r.cfg.CheckpointOnBoot {
				if _, err := sys.Online().Checkpoint(); err != nil {
					st.Close()
					return nil, err
				}
			}
			event("trained and durable: epoch=%d", sys.Online().Epoch())
		}
	} else {
		event("cold start: training in memory (backend=%s workload=%s scale=%g seed=%d)",
			spec.Backend, spec.Workload, spec.Scale, spec.Seed)
		if err := sys.TrainContext(ctx, nil); err != nil {
			return nil, err
		}
		if err := sys.EnableOnline(loopCfg); err != nil {
			return nil, err
		}
	}

	byID := map[string]*query.Query{}
	for _, q := range w.All() {
		byID[q.ID] = q
	}
	sh.HTTP = service.NewHTTPServer(sys.Online(), service.HTTPOptions{
		Resolve:    func(id string) *query.Query { return byID[id] },
		MaxPending: r.cfg.MaxPending,
	})
	return sh, nil
}

// bootFollower brings a shard up as a read-only replica: open a replication
// source (the leader's state dir over a shared filesystem, or the leader's
// /v1/t/{tenant}/repl endpoints over HTTP), wait for the leader's first
// checkpoint, install it, and start the tailer that hot-swaps every later
// generation. A follower never trains — boot cost is one checkpoint fetch.
func (r *Router) bootFollower(ctx context.Context, sh *Shard, loopCfg service.Config, event func(string, ...any)) (*Shard, error) {
	spec, sys := sh.Spec, sh.Sys
	leader := spec.Leader
	if leader == "" {
		leader = r.cfg.LeaderAddr
	}
	bootTimeout := r.cfg.ReplBootTimeout
	if bootTimeout <= 0 {
		bootTimeout = 2 * time.Minute
	}
	wctx, cancel := context.WithTimeout(ctx, bootTimeout)
	defer cancel()

	var src repl.Source
	switch {
	case r.cfg.StateDir != "":
		// Shared-filesystem replication: tail the leader's own state dir
		// under a shared read lock. The dir appears when the leader boots, so
		// retry within the boot window instead of racing it.
		dir := filepath.Join(r.cfg.StateDir, spec.Name)
		for {
			ds, err := repl.NewDirSource(dir)
			if err == nil {
				src = ds
				sh.srcClose = ds.Close
				break
			}
			select {
			case <-wctx.Done():
				return nil, fmt.Errorf("shard: follower %q: open replication source %s: %w", spec.Name, dir, err)
			case <-time.After(200 * time.Millisecond):
			}
		}
	case leader != "":
		src = repl.NewHTTPSource(leader + "/v1/t/" + spec.Name)
	default:
		return nil, fmt.Errorf("shard: follower %q needs a shared -state-dir or a -leader-addr: %w", spec.Name, fosserr.ErrBadConfig)
	}

	event("follower boot: waiting for leader checkpoint (source=%s timeout=%s)", src, bootTimeout)
	m, ck, err := repl.WaitForCheckpoint(wctx, src, 0)
	if err != nil {
		if sh.srcClose != nil {
			_ = sh.srcClose()
		}
		return nil, fmt.Errorf("shard: follower %q: %w", spec.Name, err)
	}
	if m.Backend != "" && m.Backend != spec.Backend {
		if sh.srcClose != nil {
			_ = sh.srcClose()
		}
		return nil, fmt.Errorf("shard: follower %q: leader checkpoint is backend %q, shard configured %q: %w",
			spec.Name, m.Backend, spec.Backend, fosserr.ErrBackendMismatch)
	}
	if err := sys.EnableFollower(loopCfg, ck); err != nil {
		if sh.srcClose != nil {
			_ = sh.srcClose()
		}
		return nil, fmt.Errorf("shard: follower %q: %w", spec.Name, err)
	}
	event("follower serving: checkpoint=%s epoch=%d walseq=%d", m.Checkpoint, ck.Epoch, ck.WALSeq)

	tl := repl.New(repl.Config{
		Source:        src,
		Interval:      r.cfg.ReplInterval,
		InitialEpoch:  ck.Epoch,
		InitialWALSeq: ck.WALSeq,
		Apply: func(_ store.Manifest, ck store.Checkpoint) error {
			return sys.Online().ApplyCheckpoint(ck)
		},
		OnEvent: func(msg string) { event("%s", msg) },
	})
	tl.Start()
	sh.Tailer = tl

	byID := map[string]*query.Query{}
	for _, q := range sh.W.All() {
		byID[q.ID] = q
	}
	opts := service.HTTPOptions{
		Resolve:    func(id string) *query.Query { return byID[id] },
		MaxPending: r.cfg.MaxPending,
		Follower:   true,
		LeaderAddr: leader,
		ReplStats:  tl.Stats,
	}
	if leader != "" {
		opts.ForwardFeedback = service.NewFeedbackForwarder(leader + "/v1/t/" + spec.Name)
	}
	sh.HTTP = service.NewHTTPServer(sys.Online(), opts)
	return sh, nil
}

// Close drains the whole fleet: new routes are refused immediately, every
// shard drains in parallel under the shared ctx (stop intake → await or
// cancel in-flight retrain → final checkpoint → release WAL lock), and the
// shared worker pool is released last. Idempotent; concurrent callers all
// observe the one drain's result (the first error, if any).
func (r *Router) Close(ctx context.Context) error {
	r.closeOnce.Do(func() {
		r.mu.Lock()
		r.closed = true
		shards := make([]*Shard, 0, len(r.shards))
		for _, sh := range r.shards {
			shards = append(shards, sh)
		}
		r.mu.Unlock()

		var wg sync.WaitGroup
		errs := make([]error, len(shards))
		for i, sh := range shards {
			wg.Add(1)
			go func(i int, sh *Shard) {
				defer wg.Done()
				if err := sh.Close(ctx); err != nil {
					errs[i] = fmt.Errorf("tenant %q: %w", sh.Spec.Name, err)
				} else if r.cfg.OnEvent != nil {
					r.cfg.OnEvent(sh.Spec.Name, fmt.Sprintf("drained: %s", sh.Sys.OnlineStats()))
				}
			}(i, sh)
		}
		wg.Wait()
		r.pool.Close()
		if err := errors.Join(errs...); err != nil {
			// Every failed tenant is reported: an operator draining for a
			// deploy needs to know each shard whose final checkpoint is
			// stale, not just the first.
			r.closeErr = fmt.Errorf("shard: close: %w", err)
		}
	})
	return r.closeErr
}

// ---- service.TenantRegistry ----

// TenantServer implements service.TenantRegistry.
func (r *Router) TenantServer(name string) (*service.HTTPServer, error) {
	sh, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	return sh.HTTP, nil
}

// TenantNames implements service.TenantRegistry.
func (r *Router) TenantNames() []string { return r.Names() }

// CreateTenant implements service.TenantRegistry: live shard creation from
// a wire spec. The new shard trains (or warm-starts) before the call
// returns; canceling ctx aborts the boot.
func (r *Router) CreateTenant(ctx context.Context, spec service.WireTenantSpec) (*service.HTTPServer, error) {
	sh, err := r.Create(ctx, TenantSpec{
		Name:     spec.Tenant,
		Workload: spec.Workload,
		Backend:  spec.Backend,
		Scale:    spec.Scale,
		Seed:     spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	return sh.HTTP, nil
}
