package shard

// The multi-tenant isolation suite: a fleet's whole value is that tenants
// cannot observe each other. These tests boot small real fleets (actual
// core systems, actual training) and assert structural isolation — per-
// tenant epochs, caches, buffers, and state directories never cross — plus
// the router's lifecycle contract.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	goruntime "runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/core"
	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/service"
	"github.com/foss-db/foss/internal/store"
)

// tinyConfig keeps per-shard training in test time.
func tinyConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.StateNet = aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	cfg.PlanCache = 64
	cfg.Learner.Iterations = 1
	cfg.Learner.RealPerIter = 4
	cfg.Learner.SimPerIter = 12
	cfg.Learner.ValidatePerIter = 4
	cfg.Learner.InferenceRollouts = 1
	return cfg
}

func tinyRouterConfig(stateDir string) Config {
	return Config{
		System: tinyConfig(),
		Loop: service.Config{
			Detector:          service.DetectorConfig{Window: 8, Threshold: 1e12, MinSamples: 8},
			Cooldown:          1 << 30, // isolation tests pin epochs: no retrains
			RetrainIterations: 1,
			Background:        true,
		},
		Defaults:         TenantSpec{Workload: "job", Scale: 0.25, Seed: 1},
		StateDir:         stateDir,
		Workers:          2,
		CheckpointOnBoot: stateDir != "",
	}
}

// TestMultiTenantIsolation boots two shards on different optimizer backends
// and different (name-derived) seeds, hammers both with concurrent
// optimize/feedback traffic, and asserts nothing bled across: per-tenant
// serve/record counters, plan caches, execution buffers, epochs, and — with
// a state dir — checkpoint files all stay tenant-private.
func TestMultiTenantIsolation(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyRouterConfig(dir)
	router, err := NewRouter(context.Background(), cfg, []TenantSpec{
		{Name: "acme", Backend: "selinger"},
		{Name: "globex", Backend: "gaussim"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close(context.Background())

	acme, err := router.Get("acme")
	if err != nil {
		t.Fatal(err)
	}
	globex, err := router.Get("globex")
	if err != nil {
		t.Fatal(err)
	}
	if acme.Sys.BackendName() == globex.Sys.BackendName() {
		t.Fatalf("tenants share a backend: %s", acme.Sys.BackendName())
	}
	if acme.Spec.Seed == globex.Spec.Seed {
		t.Fatalf("name-derived seeds collided: %d", acme.Spec.Seed)
	}

	bufA0 := acme.Sys.Buffer().Size()
	bufG0 := globex.Sys.Buffer().Size()

	// Concurrent full doctor-loop turns on both shards.
	const turns = 24
	var wg sync.WaitGroup
	for _, sh := range []*Shard{acme, globex} {
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			qs := sh.W.Train
			for i := 0; i < turns; i++ {
				if _, _, err := sh.Step(context.Background(), qs[i%len(qs)]); err != nil {
					t.Errorf("tenant %s: %v", sh.Spec.Name, err)
					return
				}
			}
		}(sh)
	}
	wg.Wait()

	for _, sh := range []*Shard{acme, globex} {
		st := sh.Sys.OnlineStats()
		if st.Served != turns || st.Recorded != turns {
			t.Fatalf("tenant %s: served=%d recorded=%d, want %d each (cross-tenant bleed?)",
				sh.Spec.Name, st.Served, st.Recorded, turns)
		}
		if st.Epoch != 1 || st.Swaps != 0 {
			t.Fatalf("tenant %s: epoch=%d swaps=%d, want a quiet epoch 1", sh.Spec.Name, st.Epoch, st.Swaps)
		}
	}
	// Feedback grew each tenant's buffer by its own turns only (distinct
	// queries dedup inside one tenant, so the bound is ≤; the cross-bleed
	// signal is growth beyond one tenant's own traffic).
	if grew := acme.Sys.Buffer().Size() - bufA0; grew > turns {
		t.Fatalf("acme buffer grew %d > its own %d turns", grew, turns)
	}
	if grew := globex.Sys.Buffer().Size() - bufG0; grew > turns {
		t.Fatalf("globex buffer grew %d > its own %d turns", grew, turns)
	}
	// Plan caches are private: each tenant's cache only holds its own
	// fingerprints (sizes reflect per-tenant distinct queries, and a
	// fleet-wide total equals the per-tenant sum).
	csA, csG := acme.Sys.CacheStats(), globex.Sys.CacheStats()
	if csA.Size == 0 || csG.Size == 0 {
		t.Fatalf("plan caches empty after traffic: acme=%d globex=%d", csA.Size, csG.Size)
	}
	if csA.Hits+csA.Misses != turns || csG.Hits+csG.Misses != turns {
		t.Fatalf("cache touch counts crossed tenants: acme=%d globex=%d, want %d each",
			csA.Hits+csA.Misses, csG.Hits+csG.Misses, turns)
	}

	// Per-tenant checkpoints land in separate directories.
	if _, err := router.Get("acme"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"acme", "globex"} {
		ents, err := os.ReadDir(filepath.Join(dir, name, "checkpoints"))
		if err != nil || len(ents) == 0 {
			t.Fatalf("tenant %s has no private checkpoints: %v", name, err)
		}
	}
}

// TestRouterLifecycle: Close drains every shard (final checkpoint each,
// WAL locks released so a successor can take over), refuses routes
// afterwards, is idempotent, and leaves no goroutines behind.
func TestRouterLifecycle(t *testing.T) {
	base := goruntime.NumGoroutine()
	dir := t.TempDir()
	cfg := tinyRouterConfig(dir)
	router, err := NewRouter(context.Background(), cfg, []TenantSpec{
		{Name: "acme"}, {Name: "globex", Backend: "gaussim"},
	})
	if err != nil {
		t.Fatal(err)
	}
	acme, _ := router.Get("acme")
	if _, _, err := acme.Step(context.Background(), acme.W.Train[0]); err != nil {
		t.Fatal(err)
	}
	ckBefore := acme.Sys.OnlineStats().Checkpoints

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := router.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := router.Close(ctx); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if acme.Sys.OnlineStats().Checkpoints != ckBefore+1 {
		t.Fatalf("drain took no final checkpoint: %d → %d", ckBefore, acme.Sys.OnlineStats().Checkpoints)
	}
	if _, err := router.Get("acme"); !errors.Is(err, fosserr.ErrLoopClosed) {
		t.Fatalf("post-close Get error = %v, want ErrLoopClosed", err)
	}
	if _, err := acme.Serve(context.Background(), acme.W.Train[0]); !errors.Is(err, fosserr.ErrLoopClosed) {
		t.Fatalf("post-close Serve error = %v, want ErrLoopClosed", err)
	}
	// The WAL locks are released: a successor fleet can take the state over
	// and warm-starts from the drain's final checkpoints.
	router2, err := NewRouter(context.Background(), cfg, []TenantSpec{
		{Name: "acme"}, {Name: "globex", Backend: "gaussim"},
	})
	if err != nil {
		t.Fatalf("successor fleet refused the state dir: %v", err)
	}
	acme2, _ := router2.Get("acme")
	if !acme2.Recovery.Recovered {
		t.Fatal("successor cold-started; drain checkpoint was not recoverable")
	}
	if err := router2.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Shared pool workers and loop goroutines are gone.
	deadline := time.Now().Add(5 * time.Second)
	for goruntime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked across router Close: %d > %d\n%s",
				goruntime.NumGoroutine(), base, buf[:goruntime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWarmRestartBitIdentical: drain a fleet, boot a successor over the
// same state dir, and the successor serves the identical plan at the same
// epoch for every tenant — the multi-tenant version of PR 4's kill-9
// guarantee, reached through SIGTERM's drain path instead.
func TestWarmRestartBitIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyRouterConfig(dir)
	specs := []TenantSpec{{Name: "acme"}, {Name: "globex", Backend: "gaussim"}}
	router, err := NewRouter(context.Background(), cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	type probe struct {
		key   string
		epoch uint64
	}
	probes := map[string]probe{}
	for _, name := range router.Names() {
		sh, _ := router.Get(name)
		res, err := sh.Serve(context.Background(), sh.W.Test[0])
		if err != nil {
			t.Fatal(err)
		}
		probes[name] = probe{key: res.Eval.ICP.Key(), epoch: res.Epoch}
	}
	if err := router.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	router2, err := NewRouter(context.Background(), cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer router2.Close(context.Background())
	for _, name := range router2.Names() {
		sh, _ := router2.Get(name)
		if !sh.Recovery.Recovered {
			t.Fatalf("tenant %s cold-started on restart", name)
		}
		res, err := sh.Serve(context.Background(), sh.W.Test[0])
		if err != nil {
			t.Fatal(err)
		}
		want := probes[name]
		if res.Eval.ICP.Key() != want.key || res.Epoch != want.epoch {
			t.Fatalf("tenant %s: restarted serving (%s, epoch %d) != pre-drain (%s, epoch %d)",
				name, res.Eval.ICP.Key(), res.Epoch, want.key, want.epoch)
		}
	}
}

// TestCreateTenantLive adds a shard to a serving fleet through the wire
// path and checks duplicate and post-close creation are refused.
func TestCreateTenantLive(t *testing.T) {
	cfg := tinyRouterConfig("") // in-memory: live creation is the point here
	router, err := NewRouter(context.Background(), cfg, []TenantSpec{{Name: "acme"}})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close(context.Background())

	mux := service.NewMultiHTTPServer(router)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/tenants", "application/json",
		strings.NewReader(`{"tenant": "globex", "backend": "gaussim"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	var created map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	if created["backend"] != "gaussim" {
		t.Fatalf("created tenant on backend %v, want gaussim", created["backend"])
	}
	// The new tenant serves through its scoped endpoint.
	sh, err := router.Get("globex")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := http.Post(ts.URL+"/v1/t/globex/optimize", "application/json",
		strings.NewReader(`{"query_id": "`+sh.W.Train[0].ID+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("new tenant optimize status %d", r2.StatusCode)
	}
	// Duplicates are refused.
	if _, err := router.Create(context.Background(), TenantSpec{Name: "acme"}); !errors.Is(err, fosserr.ErrBadConfig) {
		t.Fatalf("duplicate create error = %v, want ErrBadConfig", err)
	}
	// Names that would escape the state dir or break tenant routing are
	// refused before anything touches the filesystem.
	for _, name := range []string{"../evil", "a/b", "a b", ".", "..", ""} {
		if _, err := router.Create(context.Background(), TenantSpec{Name: name}); !errors.Is(err, fosserr.ErrBadConfig) {
			t.Fatalf("name %q: error = %v, want ErrBadConfig", name, err)
		}
	}
	// Unknown tenants 404 on the scoped path.
	r3, err := http.Get(ts.URL + "/v1/t/nobody/stats")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant status %d, want 404", r3.StatusCode)
	}
	// Aggregate stats roll both tenants up.
	r4, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r4.Body.Close()
	var agg struct {
		Tenants map[string]json.RawMessage `json:"tenants"`
		Totals  struct {
			Tenants int    `json:"tenants"`
			Served  uint64 `json:"served"`
		} `json:"totals"`
	}
	if err := json.NewDecoder(r4.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	if agg.Totals.Tenants != 2 || len(agg.Tenants) != 2 || agg.Totals.Served == 0 {
		t.Fatalf("aggregate roll-up wrong: %+v", agg.Totals)
	}
}

// TestDoubleOpenStateDirRefused: two shards misconfigured onto one state
// directory must fail the boot with ErrStoreLocked instead of corrupting a
// shared WAL — the router surfaces the store's lock.
func TestDoubleOpenStateDirRefused(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyRouterConfig(dir)
	router, err := NewRouter(context.Background(), cfg, []TenantSpec{{Name: "acme"}})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close(context.Background())
	// A second store on acme's directory — what a misconfigured sibling
	// shard or process would open — is refused while the shard lives.
	if _, err := store.Open(filepath.Join(dir, "acme")); !errors.Is(err, fosserr.ErrStoreLocked) {
		t.Fatalf("double open error = %v, want ErrStoreLocked", err)
	}
	// And a second tenant pointed at the same directory name collides the
	// same way through the router.
	if _, err := router.Create(context.Background(), TenantSpec{Name: "acme", Backend: "gaussim"}); err == nil {
		t.Fatal("duplicate tenant over one state dir was not refused")
	}
}
