module github.com/foss-db/foss

go 1.24
