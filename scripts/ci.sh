#!/usr/bin/env bash
# ci.sh — the repository's verification pipeline.
#
#   vet, gofmt cleanliness, the fosslint invariant suite (clean tree +
#   every rule proven to fire on its seeded fixture), build, race-enabled
#   tests, the Workers determinism checks, the tiered-serving, allocation,
#   durability, drain, metrics, replication, and schema-evolution gates,
#   and (on multi-core machines) the parallel-training and tier-0 speedup
#   measurements.
#
# Usage: scripts/ci.sh [--quick]
#   --quick skips the race detector and the speedup bench.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "== go vet =="
go vet ./...
# the analyzers the repo leans on hardest, named explicitly so a future
# change to vet's default set can never silently drop them
go vet -unreachable -copylocks -atomic ./...

echo "== gofmt cleanliness =="
unformatted=$(gofmt -l .)
[[ -z "$unformatted" ]] || { printf 'FAIL: gofmt-unclean files:\n%s\n' "$unformatted"; exit 1; }

echo "== fosslint: repo invariants (clean tree, firing fixtures, self-check) =="
# The static-analysis gate runs before any test gate: it is the cheapest
# whole-module check and its findings usually explain later test failures.
lint_dir=$(mktemp -d)
go build -o "$lint_dir/fosslint" ./cmd/fosslint
# 1) the production tree must be clean, and fast (budget: 10s wall)
lint_t0=$(date +%s)
"$lint_dir/fosslint" ./...
lint_t1=$(date +%s)
lint_secs=$((lint_t1 - lint_t0))
echo "fosslint full-module run: ${lint_secs}s"
[[ "$lint_secs" -le 10 ]] || { echo "FAIL: fosslint took ${lint_secs}s, budget is 10s"; exit 1; }
# 2) every rule must fire on its seeded-violation fixture (exit 1 =
# findings; 0 would mean the rule rotted, 2 would mean the run broke)
for rule in determinism goroutine sentinel fsyncrename ctxfirst statsorder; do
  rc=0
  "$lint_dir/fosslint" -unscoped -rules "$rule" "./internal/lint/testdata/$rule" >/dev/null 2>&1 || rc=$?
  [[ "$rc" -eq 1 ]] || { echo "FAIL: rule $rule exited $rc on its fixture, want 1 (findings)"; exit 1; }
done
# 3) reasonless ignore directives are findings, valid ones suppress
rc=0
"$lint_dir/fosslint" -unscoped "./internal/lint/testdata/ignore" >/dev/null 2>&1 || rc=$?
[[ "$rc" -eq 1 ]] || { echo "FAIL: ignore fixture exited $rc, want 1"; exit 1; }
# 4) the linter holds itself to the same invariants
"$lint_dir/fosslint" ./internal/lint || { echo "FAIL: fosslint findings on internal/lint itself"; exit 1; }
rm -rf "$lint_dir"

echo "== go build (library, cmd, and all examples) =="
go build ./...
# the examples are the public-API contract surface: list them explicitly so
# a GOFLAGS/build-cache quirk can never silently skip them (built into a
# throwaway dir — naming main packages makes go build emit executables)
exbin=$(mktemp -d)
go build -o "$exbin/" ./examples/quickstart ./examples/jobtour ./examples/hintsteer ./examples/doctor ./examples/ablation ./examples/fleet
rm -rf "$exbin"

if [[ $quick -eq 1 ]]; then
  echo "== go test (quick) =="
  go test ./...
else
  echo "== go test -race =="
  go test -race ./...
fi

echo "== determinism: Workers=1 vs sequential, parallel replay =="
# TestWorkersZeroAndOneIdentical: Workers<=1 selects the sequential path.
# TestParallelTrainingDeterministic: two Workers=3 runs must be bit-identical.
go test -count=1 -run 'TestWorkersZeroAndOneIdentical|TestParallelTrainingDeterministic' ./internal/core/

echo "== determinism: online loop replay =="
# TestOnlineRunDeterministic: two full drift-adapt runs must be bit-identical.
go test -count=1 -run 'TestOnlineRunDeterministic' ./internal/core/

echo "== backend parity: selinger golden + cross-backend doctor loop + batch/single =="
# TestSelingerGoldenBitIdentical: the Backend refactor must stay bit-identical
#   to the pre-interface engine (testdata/golden_selinger.txt).
# TestCrossBackendParity: both backends complete train->serve->record behind
#   the same foss.Backend interface.
# TestOptimizeBatchMatchesSingle: batched serving is bit-identical per query.
# TestBackendsDiverge: gaussim is a genuinely different engine.
go test -count=1 -run 'TestSelingerGoldenBitIdentical|TestCrossBackendParity|TestOptimizeBatchMatchesSingle|TestSetBackendCacheIsolation' ./internal/core/
go test -count=1 ./internal/backend/

echo "== wire surface: HTTP optimize->feedback round trip =="
go test -count=1 -run 'TestHTTP' ./internal/service/ ./internal/core/

echo "== lifecycle: Close drains retrains, no goroutine leaks, store single-writer =="
# TestCloseDrainsBackgroundRetrain / TestCloseCancelsStuckRetrain: the loop's
#   shutdown contract — drain or cancel, final checkpoint, no leaked goroutine.
# TestOpenRefusesDoubleOpen: two stores on one state dir fail ErrStoreLocked.
go test -race -count=1 -run 'TestClose|TestServeIDExpiry' ./internal/service/
go test -count=1 -run 'TestOpenRefusesDoubleOpen|TestLockScopedPerDirectory' ./internal/store/
go test -count=1 -run 'TestSharedPool' ./internal/runtime/

echo "== multi-tenant: isolation + fleet lifecycle + warm restart =="
# TestMultiTenantIsolation: two backends, concurrent traffic, no cross-bleed.
# TestRouterLifecycle / TestWarmRestartBitIdentical: drain → successor fleet
#   recovers every tenant bit-identically.
go test -race -count=1 ./internal/shard/

echo "== tiered serving: determinism + promotion/escalation + hot-swap invalidation =="
# TestTierDecisionsDeterministic: identical traffic → identical tier choices.
# TestHotSwapInvalidatesPlanMemory: a swap clears the tier-0 pins in the same
#   step that bumps the epoch (the shared composite-identity regression test).
# TestTierHitRatioRepeatTrace: repeat-heavy trace lands >= 85% on tiers 0/1.
# TestTierMemorySurvivesRestart: pins survive checkpoint → crash → recover.
go test -count=1 ./internal/tier/
go test -race -count=1 -run 'TestTier|TestHotSwap' ./internal/service/
go test -count=1 -run 'TestTierMemorySurvivesRestart' ./internal/core/

echo "== alloc gates: tier-0 serve is allocation-free (metrics recording included), batched scoring bounded =="
# Run without -race (instrumentation changes the counts; the tests skip
# themselves under the detector). TestTier0ServeZeroAllocs now runs with the
# latency histogram recording on its path: metrics must stay free.
go test -count=1 -run 'TestTier0ServeZeroAllocs' ./internal/service/
go test -count=1 -run 'TestHistogramObserveZeroAllocs' ./internal/metrics/
go test -count=1 -run 'TestScoreBatchAllocsBounded' ./internal/aam/

echo "== observability: scrape consistency + explain/advisor wire round trips =="
# TestStatsConsistentUnderTraffic: concurrent scrapes never see torn stats.
# TestMetricsGoldenFormat / TestMetricsAggregateTenantLabels: the exposition
#   page is valid Prometheus text, tenant-labeled in fleets.
# TestHTTPExplainRoundTrip / TestHTTPExecuteInterleaveRing: per-serve
#   provenance, and the execute:true ring-accounting regression.
go test -race -count=1 -run 'TestStatsConsistentUnderTraffic|TestMetrics|TestHTTPExplain|TestHTTPExecuteInterleaveRing|TestHTTPAdvisorEndpoint|TestAdvisor' ./internal/service/
go test -count=1 ./internal/metrics/

echo "== durability: snapshot rejection + crash recovery (in-process) =="
# TestSnapshotRejections: cross-backend / version-skew / corrupt snapshots
#   fail with sentinel errors instead of loading silently.
# TestCrashRecoveryBitIdentical: checkpoint mid-stream, rebuild from disk,
#   bit-identical serving + deterministic WAL replay.
go test -count=1 -run 'TestSnapshotRejections|TestCrashRecoveryBitIdentical|TestRecoverOnlineColdStartCheckpoints' ./internal/core/
go test -count=1 ./internal/store/

echo "== schema evolution: in-process DDL gates (-race) =="
# TestApplyDDL*: epoch bump without a model swap, stale serves refused,
#   KindDDL journaled, followers 403.
# TestDDLInvalidatesPlanMemory: an apply clears tier-0 pins like a hot-swap.
# TestFollowerCatalogReplication: a leader DDL reaches the follower through
#   ordinary checkpoint replication within the tail interval.
# TestDDLWarmRestart...: kill after a DDL warm-starts on the evolved schema.
go test -race -count=1 -run 'TestApplyDDL|TestDDLInvalidatesPlanMemory' ./internal/service/
go test -race -count=1 -run 'TestFollowerCatalogReplication' ./internal/shard/
go test -count=1 -run 'TestDDLWarmRestartResumesAtPostDDLCatalogEpoch' ./internal/core/
go test -count=1 -run 'TestDriftScenarios' ./internal/workload/
go test -count=1 ./internal/engine/catalog/

echo "== durability: fossd checkpoint -> kill -9 -> restart -> serve parity =="
# The process-level recovery gate: a real fossd serves and checkpoints, is
# killed with SIGKILL (no shutdown path runs), and a second fossd over the
# same -state-dir must warm-start (no retraining) and serve the identical
# plan for the same query.
gate_dir=$(mktemp -d)
gate_pid=""
# A failed gate must not leak a serving fossd (it would hold the port and
# break every later run) — kill it before removing its state.
trap '[[ -n "$gate_pid" ]] && kill -9 "$gate_pid" 2>/dev/null; rm -rf "$gate_dir"' EXIT
go build -o "$gate_dir/fossd" ./cmd/fossd
gate_addr=127.0.0.1:8497
gate_train="-workload job -scale 0.35 -iters 1 -sim 20 -real 6 -validate 6 -rollouts 1"
wait_up() {
  for _ in $(seq 1 120); do
    curl -sf "http://$gate_addr/v1/stats" >/dev/null 2>&1 && return 0
    sleep 1
  done
  return 1
}
# shellcheck disable=SC2086
"$gate_dir/fossd" $gate_train -serve-http "$gate_addr" -state-dir "$gate_dir/state" >"$gate_dir/first.log" 2>&1 &
gate_pid=$!
wait_up || { cat "$gate_dir/first.log"; echo "FAIL: first fossd never came up"; exit 1; }
curl -sf "http://$gate_addr/v1/optimize" -d '{"query_id": "1_1", "execute": true}' >"$gate_dir/plan1.json"
curl -sf -X POST "http://$gate_addr/v1/checkpoint" >/dev/null
# journal one more execution past the checkpoint: it must survive via the WAL
curl -sf "http://$gate_addr/v1/optimize" -d '{"query_id": "2_1", "execute": true}' >/dev/null
kill -9 "$gate_pid" 2>/dev/null; wait "$gate_pid" 2>/dev/null || true
# shellcheck disable=SC2086
"$gate_dir/fossd" $gate_train -serve-http "$gate_addr" -state-dir "$gate_dir/state" >"$gate_dir/second.log" 2>&1 &
gate_pid=$!
wait_up || { cat "$gate_dir/second.log"; echo "FAIL: restarted fossd never came up"; exit 1; }
grep -q "warm restart" "$gate_dir/second.log" || { cat "$gate_dir/second.log"; echo "FAIL: restart retrained instead of recovering"; exit 1; }
curl -sf "http://$gate_addr/v1/optimize" -d '{"query_id": "1_1"}' >"$gate_dir/plan2.json"
curl -sf "http://$gate_addr/v1/stats" >"$gate_dir/stats.json"
kill "$gate_pid" 2>/dev/null; wait "$gate_pid" 2>/dev/null || true
gate_pid=""
key1=$(sed -n 's/.*"icp_key":"\([^"]*\)".*/\1/p' "$gate_dir/plan1.json")
key2=$(sed -n 's/.*"icp_key":"\([^"]*\)".*/\1/p' "$gate_dir/plan2.json")
replayed=$(sed -n 's/.*"Replayed":\([0-9]*\).*/\1/p' "$gate_dir/stats.json")
[[ -n "$key1" && "$key1" == "$key2" ]] || { echo "FAIL: post-restart plan '$key2' != pre-crash plan '$key1'"; exit 1; }
[[ "${replayed:-0}" -ge 1 ]] || { echo "FAIL: post-checkpoint WAL record not replayed (replayed=$replayed)"; exit 1; }
echo "recovery gate OK: plan '$key1' served identically across kill -9 (walReplayed=$replayed)"

echo "== lifecycle: 2-tenant fossd SIGTERM drain -> clean exit -> warm restart =="
# The deploy gate: a sharded fossd serving two tenants under live traffic
# takes a SIGTERM, drains losslessly (every in-flight request completes or is
# cleanly refused, a final checkpoint lands per tenant), exits 0, and a
# successor over the same state dir warm-starts BOTH tenants to bit-identical
# serving.
fleet_addr=127.0.0.1:8498
fleet_flags="-tenants acme,globex -tenant-spec globex=backend:gaussim -serve-http $fleet_addr -state-dir $gate_dir/fleet"
fleet_up() {
  for _ in $(seq 1 180); do
    curl -sf "http://$fleet_addr/v1/tenants" >/dev/null 2>&1 && return 0
    sleep 1
  done
  return 1
}
# shellcheck disable=SC2086
"$gate_dir/fossd" $gate_train $fleet_flags >"$gate_dir/fleet1.log" 2>&1 &
gate_pid=$!
fleet_up || { cat "$gate_dir/fleet1.log"; echo "FAIL: fleet never came up"; exit 1; }
curl -sf "http://$fleet_addr/v1/t/acme/optimize" -d '{"query_id": "1_1"}' >"$gate_dir/acme1.json"
curl -sf "http://$fleet_addr/v1/t/globex/optimize" -d '{"query_id": "1_1"}' >"$gate_dir/globex1.json"
# Live traffic through the SIGTERM: every body the server answers must be a
# complete response (a plan or a clean refusal), never a torn one.
: >"$gate_dir/traffic.out"
(
  set +e # refused connections after the listener closes are expected, not errors
  while :; do
    curl -sf "http://$fleet_addr/v1/t/acme/optimize" -d '{"query_id": "2_1", "execute": true}' >>"$gate_dir/traffic.out" 2>/dev/null
    echo >>"$gate_dir/traffic.out"
  done
) &
traffic_pid=$!
sleep 1
kill -TERM "$gate_pid"
fleet_rc=0
wait "$gate_pid" || fleet_rc=$?
kill "$traffic_pid" 2>/dev/null || true
wait "$traffic_pid" 2>/dev/null || true
gate_pid=""
[[ "$fleet_rc" -eq 0 ]] || { cat "$gate_dir/fleet1.log"; echo "FAIL: SIGTERM exit code $fleet_rc, want 0"; exit 1; }
grep -q "fleet drained cleanly" "$gate_dir/fleet1.log" || { cat "$gate_dir/fleet1.log"; echo "FAIL: fleet did not drain"; exit 1; }
[[ "$(grep -c 'drained:' "$gate_dir/fleet1.log")" -eq 2 ]] || { cat "$gate_dir/fleet1.log"; echo "FAIL: not every tenant drained"; exit 1; }
for t in acme globex; do
  [[ -f "$gate_dir/fleet/$t/MANIFEST" ]] || { echo "FAIL: tenant $t has no durable checkpoint after drain"; exit 1; }
done
# Zero dropped in-flight requests: every answered body parses as a served
# plan (requests arriving after the listener closed were refused at connect,
# which curl -f reports by writing nothing).
answered=$(grep -c 'icp_key' "$gate_dir/traffic.out" || true)
# A vacuous pass proves nothing: at least one in-flight answer must have
# landed for the zero-torn-responses assertion to mean anything.
[[ "${answered:-0}" -ge 1 ]] || { echo "FAIL: traffic loop landed no answers; the drain was never exercised under load"; exit 1; }
while IFS= read -r line; do
  [[ -z "$line" ]] && continue
  echo "$line" | grep -q 'icp_key' || { echo "FAIL: torn/dropped in-flight response: $line"; exit 1; }
done <"$gate_dir/traffic.out"
# shellcheck disable=SC2086
"$gate_dir/fossd" $gate_train $fleet_flags >"$gate_dir/fleet2.log" 2>&1 &
gate_pid=$!
fleet_up || { cat "$gate_dir/fleet2.log"; echo "FAIL: restarted fleet never came up"; exit 1; }
[[ "$(grep -c 'warm restart' "$gate_dir/fleet2.log")" -eq 2 ]] || { cat "$gate_dir/fleet2.log"; echo "FAIL: a tenant retrained instead of warm-starting"; exit 1; }
curl -sf "http://$fleet_addr/v1/t/acme/optimize" -d '{"query_id": "1_1"}' >"$gate_dir/acme2.json"
curl -sf "http://$fleet_addr/v1/t/globex/optimize" -d '{"query_id": "1_1"}' >"$gate_dir/globex2.json"
kill -TERM "$gate_pid"; wait "$gate_pid" 2>/dev/null || true
gate_pid=""
for t in acme globex; do
  k1=$(sed -n 's/.*"icp_key":"\([^"]*\)".*/\1/p' "$gate_dir/$t"1.json)
  k2=$(sed -n 's/.*"icp_key":"\([^"]*\)".*/\1/p' "$gate_dir/$t"2.json)
  [[ -n "$k1" && "$k1" == "$k2" ]] || { echo "FAIL: tenant $t restarted plan '$k2' != pre-drain '$k1'"; exit 1; }
done
echo "drain gate OK: SIGTERM drained 2 tenants cleanly ($answered in-flight answers intact), both warm-restarted bit-identically"

echo "== observability: 2-tenant /metrics scrape — monotonic counters, histogram == served =="
# The scrape gate: live traffic against a 2-tenant fossd, two scrapes of the
# aggregate /metrics page around more traffic. Counters must be monotonic
# across the scrapes and (traffic strictly between scrapes, so the fleet is
# quiescent at each) the summed histogram counts must equal the summed serve
# counter on both pages.
met_addr=127.0.0.1:8499
met_flags="-tenants acme,globex -tenant-spec globex=backend:gaussim -serve-http $met_addr"
met_up() {
  for _ in $(seq 1 180); do
    curl -sf "http://$met_addr/v1/tenants" >/dev/null 2>&1 && return 0
    sleep 1
  done
  return 1
}
# shellcheck disable=SC2086
"$gate_dir/fossd" $gate_train $met_flags >"$gate_dir/metrics.log" 2>&1 &
gate_pid=$!
met_up || { cat "$gate_dir/metrics.log"; echo "FAIL: metrics-gate fleet never came up"; exit 1; }
met_traffic() { # $1 = requests per tenant
  for _ in $(seq 1 "$1"); do
    for t in acme globex; do
      curl -sf "http://$met_addr/v1/t/$t/optimize" -d '{"query_id": "1_1", "execute": true}' >/dev/null
    done
  done
}
met_sum() { # $1 = page file, $2 = sample-name prefix
  grep "^$2" "$1" | awk '{s += $NF} END {print s + 0}'
}
met_traffic 3
curl -sf "http://$met_addr/metrics" >"$gate_dir/scrape1.txt"
met_traffic 2
curl -sf "http://$met_addr/metrics" >"$gate_dir/scrape2.txt"
kill -TERM "$gate_pid"; wait "$gate_pid" 2>/dev/null || true
gate_pid=""
for page in scrape1 scrape2; do
  grep -q 'tenant="acme"' "$gate_dir/$page.txt" && grep -q 'tenant="globex"' "$gate_dir/$page.txt" \
    || { echo "FAIL: $page is not tenant-labeled"; exit 1; }
  served=$(met_sum "$gate_dir/$page.txt" 'foss_served_total')
  hist=$(met_sum "$gate_dir/$page.txt" 'foss_serve_latency_seconds_count')
  [[ "$served" -ge 1 ]] || { echo "FAIL: $page shows no serves"; exit 1; }
  [[ "$hist" -eq "$served" ]] || { echo "FAIL: $page histogram counts $hist != served $served"; exit 1; }
done
for fam in foss_served_total foss_recorded_total foss_serve_latency_seconds_count; do
  a=$(met_sum "$gate_dir/scrape1.txt" "$fam")
  b=$(met_sum "$gate_dir/scrape2.txt" "$fam")
  [[ "$b" -gt "$a" ]] || { echo "FAIL: $fam not monotonic across traffic ($a -> $b)"; exit 1; }
done
echo "metrics gate OK: tenant-labeled scrape, counters monotonic, histogram counts == served on both pages"

echo "== replication: leader + 2 followers + gate, kill -9 leader mid-traffic, zero dropped reads =="
# The fleet gate: a leader trains and checkpoints; two followers replicate
# over HTTP (/v1/t/{tenant}/repl/*) and must serve the leader's exact plan;
# a fossgate with failover fronts all three. The leader takes a kill -9
# under live gate traffic — every read must keep answering (followers hold
# the last published generation) — and a restarted leader must warm-resume
# from its MANIFEST.
repl_lead=127.0.0.1:8500
repl_f1=127.0.0.1:8501
repl_f2=127.0.0.1:8502
repl_gate=127.0.0.1:8503
repl_pids=""
trap 'kill -9 $gate_pid $repl_pids 2>/dev/null || true; rm -rf "$gate_dir"' EXIT
gate_pid=""
go build -o "$gate_dir/fossgate" ./cmd/fossgate
up() { # $1 = addr
  for _ in $(seq 1 180); do
    curl -sf "http://$1/v1/tenants" >/dev/null 2>&1 && return 0
    sleep 1
  done
  return 1
}
# shellcheck disable=SC2086
"$gate_dir/fossd" $gate_train -tenants acme -state-dir "$gate_dir/repl" -checkpoint-every 4 -serve-http "$repl_lead" >"$gate_dir/lead1.log" 2>&1 &
lead_pid=$!
repl_pids="$lead_pid"
up "$repl_lead" || { cat "$gate_dir/lead1.log"; echo "FAIL: replication leader never came up"; exit 1; }
for f in "$repl_f1" "$repl_f2"; do
  # shellcheck disable=SC2086
  "$gate_dir/fossd" $gate_train -tenants acme -role follower -leader-addr "http://$repl_lead" -repl-interval 200ms -serve-http "$f" >"$gate_dir/follower-${f##*:}.log" 2>&1 &
  repl_pids="$repl_pids $!"
done
up "$repl_f1" && up "$repl_f2" || { cat "$gate_dir"/follower-*.log; echo "FAIL: a follower never came up"; exit 1; }
"$gate_dir/fossgate" -listen "$repl_gate" -members "$repl_lead,$repl_f1,$repl_f2" -failover >"$gate_dir/gate.log" 2>&1 &
repl_pids="$repl_pids $!"
for _ in $(seq 1 60); do
  curl -sf "http://$repl_gate/v1/gate" >/dev/null 2>&1 && break
  sleep 1
done
# Replication correctness: the leader's plan and both followers' plans for
# the same query must carry the same icp_key (same model generation).
curl -sf "http://$repl_lead/v1/t/acme/optimize" -d '{"query_id": "1_1"}' >"$gate_dir/lead-plan.json"
lead_key=$(sed -n 's/.*"icp_key":"\([^"]*\)".*/\1/p' "$gate_dir/lead-plan.json")
[[ -n "$lead_key" ]] || { echo "FAIL: leader served no plan"; exit 1; }
for f in "$repl_f1" "$repl_f2"; do
  grep -q "follower serving" "$gate_dir/follower-${f##*:}.log" || { cat "$gate_dir/follower-${f##*:}.log"; echo "FAIL: $f did not boot as a follower"; exit 1; }
  fk=$(curl -sf "http://$f/v1/t/acme/optimize" -d '{"query_id": "1_1"}' | sed -n 's/.*"icp_key":"\([^"]*\)".*/\1/p')
  [[ "$fk" == "$lead_key" ]] || { echo "FAIL: follower $f plan '$fk' != leader plan '$lead_key'"; exit 1; }
done
# Feedback on a follower forwards to the leader instead of 403ing.
sid=$(curl -sf "http://$repl_f1/v1/t/acme/optimize" -d '{"query_id": "2_1"}' | sed -n 's/.*"serve_id":"\([^"]*\)".*/\1/p')
[[ -n "$sid" ]] || { echo "FAIL: follower optimize returned no serve_id"; exit 1; }
fwd=$(curl -s "http://$repl_f1/v1/t/acme/feedback" -d "{\"serve_id\": \"$sid\", \"latency_ms\": 12.5}")
echo "$fwd" | grep -q '"forwarded":true' || { echo "FAIL: follower feedback not forwarded to leader: $fwd"; exit 1; }
# The merged gate scrape sees replication lag per instance.
curl -sf "http://$repl_gate/metrics" >"$gate_dir/gate-metrics.txt"
grep -q 'foss_repl_last_applied_walseq{' "$gate_dir/gate-metrics.txt" || { echo "FAIL: gate scrape missing replication gauges"; exit 1; }
grep -q 'instance="' "$gate_dir/gate-metrics.txt" || { echo "FAIL: gate scrape not instance-labeled"; exit 1; }
# Live reads through the gate across the leader kill: with failover on, a
# request whose owner died must land on a follower — zero failed requests.
: >"$gate_dir/repl-traffic.out"
(
  set +e
  while :; do
    curl -sf "http://$repl_gate/v1/t/acme/optimize" -d '{"query_id": "1_1"}' >>"$gate_dir/repl-traffic.out" || echo -n FAILED >>"$gate_dir/repl-traffic.out"
    echo >>"$gate_dir/repl-traffic.out"
  done
) &
traffic_pid=$!
sleep 1
kill -9 "$lead_pid" 2>/dev/null; wait "$lead_pid" 2>/dev/null || true
sleep 2
pre=$(wc -l <"$gate_dir/repl-traffic.out")
sleep 2
kill "$traffic_pid" 2>/dev/null || true
wait "$traffic_pid" 2>/dev/null || true
post=$(wc -l <"$gate_dir/repl-traffic.out")
[[ "$post" -gt "$pre" ]] || { echo "FAIL: gate traffic stalled after leader kill ($pre -> $post)"; exit 1; }
if grep -q FAILED "$gate_dir/repl-traffic.out"; then echo "FAIL: requests failed through the gate during leader kill"; exit 1; fi
answered=0
while IFS= read -r line; do
  [[ -z "$line" ]] && continue
  echo "$line" | grep -q "\"icp_key\":\"$lead_key\"" || { echo "FAIL: torn or wrong-generation response through gate: $line"; exit 1; }
  answered=$((answered + 1))
done <"$gate_dir/repl-traffic.out"
[[ "$answered" -ge 1 ]] || { echo "FAIL: gate traffic loop landed no answers"; exit 1; }
# A follower answers directly too: the fleet's reads survived leader death.
fk=$(curl -sf "http://$repl_f2/v1/t/acme/optimize" -d '{"query_id": "1_1"}' | sed -n 's/.*"icp_key":"\([^"]*\)".*/\1/p')
[[ "$fk" == "$lead_key" ]] || { echo "FAIL: follower lost the generation after leader death ('$fk')"; exit 1; }
# The restarted leader resumes from its own MANIFEST — warm, not retrained.
# shellcheck disable=SC2086
"$gate_dir/fossd" $gate_train -tenants acme -state-dir "$gate_dir/repl" -checkpoint-every 4 -serve-http "$repl_lead" >"$gate_dir/lead2.log" 2>&1 &
repl_pids="$repl_pids $!"
up "$repl_lead" || { cat "$gate_dir/lead2.log"; echo "FAIL: restarted leader never came up"; exit 1; }
grep -q "warm restart" "$gate_dir/lead2.log" || { cat "$gate_dir/lead2.log"; echo "FAIL: restarted leader retrained instead of resuming"; exit 1; }
lk2=$(curl -sf "http://$repl_lead/v1/t/acme/optimize" -d '{"query_id": "1_1"}' | sed -n 's/.*"icp_key":"\([^"]*\)".*/\1/p')
[[ "$lk2" == "$lead_key" ]] || { echo "FAIL: restarted leader plan '$lk2' != pre-crash plan '$lead_key'"; exit 1; }
kill $repl_pids 2>/dev/null || true
wait 2>/dev/null || true
repl_pids=""
echo "replication gate OK: 2 followers served leader's generation '$lead_key', $answered gate reads intact across kill -9, leader warm-resumed"

echo "== schema evolution: live DDL under traffic -> kill -9 -> warm restart at post-DDL epoch =="
# The migration gate: a 2-tenant fossd takes a POST /v1/t/acme/catalog DDL
# batch (drop the index on job's hottest join column, add a side table)
# while curl traffic hammers the same tenant. Serving must never block or
# tear (every answered body is a complete plan), the tenant's catalog epoch
# must bump on /v1/stats while the other tenant's stays at 0, and a kill -9
# plus warm restart must come back at the post-DDL epoch serving the same
# plan — the migration survives the crash without being re-applied.
ddl_addr=127.0.0.1:8504
ddl_flags="-tenants acme,globex -tenant-spec globex=backend:gaussim -serve-http $ddl_addr -state-dir $gate_dir/ddl"
ddl_up() {
  for _ in $(seq 1 180); do
    curl -sf "http://$ddl_addr/v1/tenants" >/dev/null 2>&1 && return 0
    sleep 1
  done
  return 1
}
# shellcheck disable=SC2086
"$gate_dir/fossd" $gate_train $ddl_flags >"$gate_dir/ddl1.log" 2>&1 &
gate_pid=$!
ddl_up || { cat "$gate_dir/ddl1.log"; echo "FAIL: ddl-gate fleet never came up"; exit 1; }
: >"$gate_dir/ddl-traffic.out"
(
  set +e # the loop outlives the DDL, not the listener: failures are findings
  while :; do
    curl -sf "http://$ddl_addr/v1/t/acme/optimize" -d '{"query_id": "1_1", "execute": true}' >>"$gate_dir/ddl-traffic.out" || echo -n FAILED >>"$gate_dir/ddl-traffic.out"
    echo >>"$gate_dir/ddl-traffic.out"
  done
) &
traffic_pid=$!
sleep 1
ddl_body='{"ddl": [{"kind": "drop-index", "table": "title", "column": "id"}, {"kind": "add-table", "table": "ci_evolved", "columns": [{"name": "id", "indexed": true}]}]}'
curl -sf "http://$ddl_addr/v1/t/acme/catalog" -d "$ddl_body" >"$gate_dir/ddl-resp.json" \
  || { cat "$gate_dir/ddl1.log"; echo "FAIL: catalog DDL refused"; exit 1; }
grep -q '"catalog_epoch":2' "$gate_dir/ddl-resp.json" || { echo "FAIL: DDL response epoch wrong: $(cat "$gate_dir/ddl-resp.json")"; exit 1; }
sleep 1
kill "$traffic_pid" 2>/dev/null || true
wait "$traffic_pid" 2>/dev/null || true
# Zero failed or torn responses across the apply: serving never blocked.
if grep -q FAILED "$gate_dir/ddl-traffic.out"; then echo "FAIL: requests failed during the DDL apply"; exit 1; fi
answered=0
while IFS= read -r line; do
  [[ -z "$line" ]] && continue
  echo "$line" | grep -q 'icp_key' || { echo "FAIL: torn response during DDL apply: $line"; exit 1; }
  answered=$((answered + 1))
done <"$gate_dir/ddl-traffic.out"
[[ "$answered" -ge 1 ]] || { echo "FAIL: ddl traffic loop landed no answers"; exit 1; }
# The epoch landed on the tenant's stats — and only that tenant's.
curl -sf "http://$ddl_addr/v1/t/acme/stats" >"$gate_dir/ddl-stats.json"
grep -q '"CatalogEpoch":2' "$gate_dir/ddl-stats.json" || { echo "FAIL: acme stats missing catalog epoch 2"; exit 1; }
curl -sf "http://$ddl_addr/v1/t/globex/stats" | grep -q '"CatalogEpoch":0' || { echo "FAIL: globex catalog epoch moved"; exit 1; }
curl -sf "http://$ddl_addr/v1/t/acme/catalog" | grep -q '"kind":"drop-index"' || { echo "FAIL: catalog log missing the applied DDL"; exit 1; }
curl -sf "http://$ddl_addr/v1/t/acme/optimize" -d '{"query_id": "1_1"}' >"$gate_dir/ddl-plan1.json"
kill -9 "$gate_pid" 2>/dev/null; wait "$gate_pid" 2>/dev/null || true
# shellcheck disable=SC2086
"$gate_dir/fossd" $gate_train $ddl_flags >"$gate_dir/ddl2.log" 2>&1 &
gate_pid=$!
ddl_up || { cat "$gate_dir/ddl2.log"; echo "FAIL: restarted ddl-gate fleet never came up"; exit 1; }
[[ "$(grep -c 'warm restart' "$gate_dir/ddl2.log")" -eq 2 ]] || { cat "$gate_dir/ddl2.log"; echo "FAIL: a tenant retrained after the DDL crash"; exit 1; }
curl -sf "http://$ddl_addr/v1/t/acme/stats" | grep -q '"CatalogEpoch":2' || { echo "FAIL: restart lost the catalog epoch"; exit 1; }
curl -sf "http://$ddl_addr/v1/t/acme/optimize" -d '{"query_id": "1_1"}' >"$gate_dir/ddl-plan2.json"
kill -TERM "$gate_pid"; wait "$gate_pid" 2>/dev/null || true
gate_pid=""
dk1=$(sed -n 's/.*"icp_key":"\([^"]*\)".*/\1/p' "$gate_dir/ddl-plan1.json")
dk2=$(sed -n 's/.*"icp_key":"\([^"]*\)".*/\1/p' "$gate_dir/ddl-plan2.json")
[[ -n "$dk1" && "$dk1" == "$dk2" ]] || { echo "FAIL: post-restart plan '$dk2' != post-DDL plan '$dk1'"; exit 1; }
echo "ddl gate OK: catalog epoch 2 under $answered intact in-flight answers, warm restart resumed the evolved schema"

if [[ $quick -eq 0 ]]; then
  ncpu=$(nproc 2>/dev/null || echo 1)
  if [[ "$ncpu" -ge 4 ]]; then
    echo "== perf snapshot (BENCH_10.json) =="
    # Hardware-gated like the speedup check: on weak runners the numbers are
    # noise; run `make bench` manually to refresh the snapshot anywhere.
    scripts/bench.sh
    echo "== metrics overhead (serve with scrape pressure vs plain serve) =="
    # The budget is <=2% (two atomic adds and a bit-length per serve). Both
    # benches serve the identical 100-query sequence, so the ratio is an
    # apples-to-apples steady state; the gate fails at 15% — beyond run-to-
    # run noise, so a pass is meaningful and a real regression (a lock or an
    # allocation on the record path) still trips it.
    go test -run xxx -bench 'BenchmarkServeOnline$|BenchmarkServeWithMetrics' -benchtime 100x . | tee /tmp/foss_metrics_bench.txt
    awk '
      /BenchmarkServeOnline/ { plain = $3 }
      /BenchmarkServeWithMetrics/ { met = $3 }
      END {
        if (plain > 0 && met > 0) {
          printf "serve with metrics: %.1fus vs plain %.1fus (%+.1f%%)\n", met/1000, plain/1000, (met/plain - 1) * 100
          if (met > plain * 1.15) { print "FAIL: metrics overhead above 15%"; exit 1 }
        }
      }' /tmp/foss_metrics_bench.txt
    echo "== tiered serving speedup (tier-0 hit vs full turn) =="
    go test -run xxx -bench 'BenchmarkServeOnline$|BenchmarkServeTiered' -benchtime 3x . | tee /tmp/foss_tier_bench.txt
    awk '
      /BenchmarkServeOnline/ { full = $3 }
      /BenchmarkServeTiered\/repeat/ { hit = $3 }
      END {
        if (full > 0 && hit > 0) {
          printf "tier-0 hit: %.1fus vs full turn %.1fus (%.0fx)\n", hit/1000, full/1000, full/hit
          if (hit > 50000) { print "FAIL: tier-0 hit above 50us"; exit 1 }
          if (full / hit < 10) { print "FAIL: tier-0 speedup below 10x"; exit 1 }
        }
      }' /tmp/foss_tier_bench.txt
    echo "== parallel training speedup (workers=1 vs workers=4) =="
    go test -run xxx -bench 'BenchmarkTrainParallel/workers=(1|4)$' -benchtime 3x . | tee /tmp/foss_bench.txt
    awk '
      /workers=1/ { base = $3 }
      /workers=4/ { par = $3 }
      END {
        if (base > 0 && par > 0) {
          ratio = base / par
          printf "speedup workers=4 vs workers=1: %.2fx\n", ratio
          if (ratio < 1.5) { print "FAIL: speedup below 1.5x"; exit 1 }
        }
      }' /tmp/foss_bench.txt
  else
    echo "== skipping bench snapshot + speedup check: only $ncpu CPU(s) available (needs >= 4) =="
  fi
fi

echo "CI OK"
