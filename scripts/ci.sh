#!/usr/bin/env bash
# ci.sh — the repository's verification pipeline.
#
#   vet, build, race-enabled tests, the Workers determinism checks, and (on
#   multi-core machines) the parallel-training speedup measurement.
#
# Usage: scripts/ci.sh [--quick]
#   --quick skips the race detector and the speedup bench.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "== go vet =="
go vet ./...

echo "== go build (library, cmd, and all examples) =="
go build ./...
# the examples are the public-API contract surface: list them explicitly so
# a GOFLAGS/build-cache quirk can never silently skip them (built into a
# throwaway dir — naming main packages makes go build emit executables)
exbin=$(mktemp -d)
go build -o "$exbin/" ./examples/quickstart ./examples/jobtour ./examples/hintsteer ./examples/doctor ./examples/ablation
rm -rf "$exbin"

if [[ $quick -eq 1 ]]; then
  echo "== go test (quick) =="
  go test ./...
else
  echo "== go test -race =="
  go test -race ./...
fi

echo "== determinism: Workers=1 vs sequential, parallel replay =="
# TestWorkersZeroAndOneIdentical: Workers<=1 selects the sequential path.
# TestParallelTrainingDeterministic: two Workers=3 runs must be bit-identical.
go test -count=1 -run 'TestWorkersZeroAndOneIdentical|TestParallelTrainingDeterministic' ./internal/core/

echo "== determinism: online loop replay =="
# TestOnlineRunDeterministic: two full drift-adapt runs must be bit-identical.
go test -count=1 -run 'TestOnlineRunDeterministic' ./internal/core/

echo "== backend parity: selinger golden + cross-backend doctor loop + batch/single =="
# TestSelingerGoldenBitIdentical: the Backend refactor must stay bit-identical
#   to the pre-interface engine (testdata/golden_selinger.txt).
# TestCrossBackendParity: both backends complete train->serve->record behind
#   the same foss.Backend interface.
# TestOptimizeBatchMatchesSingle: batched serving is bit-identical per query.
# TestBackendsDiverge: gaussim is a genuinely different engine.
go test -count=1 -run 'TestSelingerGoldenBitIdentical|TestCrossBackendParity|TestOptimizeBatchMatchesSingle|TestSetBackendCacheIsolation' ./internal/core/
go test -count=1 ./internal/backend/

echo "== wire surface: HTTP optimize->feedback round trip =="
go test -count=1 -run 'TestHTTP' ./internal/service/ ./internal/core/

if [[ $quick -eq 0 ]]; then
  ncpu=$(nproc 2>/dev/null || echo 1)
  if [[ "$ncpu" -ge 4 ]]; then
    echo "== perf snapshot (BENCH_3.json) =="
    # Hardware-gated like the speedup check: on weak runners the numbers are
    # noise; run `make bench` manually to refresh the snapshot anywhere.
    scripts/bench.sh
    echo "== parallel training speedup (workers=1 vs workers=4) =="
    go test -run xxx -bench 'BenchmarkTrainParallel/workers=(1|4)$' -benchtime 3x . | tee /tmp/foss_bench.txt
    awk '
      /workers=1/ { base = $3 }
      /workers=4/ { par = $3 }
      END {
        if (base > 0 && par > 0) {
          ratio = base / par
          printf "speedup workers=4 vs workers=1: %.2fx\n", ratio
          if (ratio < 1.5) { print "FAIL: speedup below 1.5x"; exit 1 }
        }
      }' /tmp/foss_bench.txt
  else
    echo "== skipping bench snapshot + speedup check: only $ncpu CPU(s) available (needs >= 4) =="
  fi
fi

echo "CI OK"
