#!/usr/bin/env bash
# ci.sh — the repository's verification pipeline.
#
#   vet, build, race-enabled tests, the Workers determinism checks, and (on
#   multi-core machines) the parallel-training speedup measurement.
#
# Usage: scripts/ci.sh [--quick]
#   --quick skips the race detector and the speedup bench.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "== go vet =="
go vet ./...

echo "== go build (library, cmd, and all examples) =="
go build ./...
# the examples are the public-API contract surface: list them explicitly so
# a GOFLAGS/build-cache quirk can never silently skip them (built into a
# throwaway dir — naming main packages makes go build emit executables)
exbin=$(mktemp -d)
go build -o "$exbin/" ./examples/quickstart ./examples/jobtour ./examples/hintsteer ./examples/doctor ./examples/ablation
rm -rf "$exbin"

if [[ $quick -eq 1 ]]; then
  echo "== go test (quick) =="
  go test ./...
else
  echo "== go test -race =="
  go test -race ./...
fi

echo "== determinism: Workers=1 vs sequential, parallel replay =="
# TestWorkersZeroAndOneIdentical: Workers<=1 selects the sequential path.
# TestParallelTrainingDeterministic: two Workers=3 runs must be bit-identical.
go test -count=1 -run 'TestWorkersZeroAndOneIdentical|TestParallelTrainingDeterministic' ./internal/core/

echo "== determinism: online loop replay =="
# TestOnlineRunDeterministic: two full drift-adapt runs must be bit-identical.
go test -count=1 -run 'TestOnlineRunDeterministic' ./internal/core/

echo "== backend parity: selinger golden + cross-backend doctor loop + batch/single =="
# TestSelingerGoldenBitIdentical: the Backend refactor must stay bit-identical
#   to the pre-interface engine (testdata/golden_selinger.txt).
# TestCrossBackendParity: both backends complete train->serve->record behind
#   the same foss.Backend interface.
# TestOptimizeBatchMatchesSingle: batched serving is bit-identical per query.
# TestBackendsDiverge: gaussim is a genuinely different engine.
go test -count=1 -run 'TestSelingerGoldenBitIdentical|TestCrossBackendParity|TestOptimizeBatchMatchesSingle|TestSetBackendCacheIsolation' ./internal/core/
go test -count=1 ./internal/backend/

echo "== wire surface: HTTP optimize->feedback round trip =="
go test -count=1 -run 'TestHTTP' ./internal/service/ ./internal/core/

echo "== durability: snapshot rejection + crash recovery (in-process) =="
# TestSnapshotRejections: cross-backend / version-skew / corrupt snapshots
#   fail with sentinel errors instead of loading silently.
# TestCrashRecoveryBitIdentical: checkpoint mid-stream, rebuild from disk,
#   bit-identical serving + deterministic WAL replay.
go test -count=1 -run 'TestSnapshotRejections|TestCrashRecoveryBitIdentical|TestRecoverOnlineColdStartCheckpoints' ./internal/core/
go test -count=1 ./internal/store/

echo "== durability: fossd checkpoint -> kill -9 -> restart -> serve parity =="
# The process-level recovery gate: a real fossd serves and checkpoints, is
# killed with SIGKILL (no shutdown path runs), and a second fossd over the
# same -state-dir must warm-start (no retraining) and serve the identical
# plan for the same query.
gate_dir=$(mktemp -d)
gate_pid=""
# A failed gate must not leak a serving fossd (it would hold the port and
# break every later run) — kill it before removing its state.
trap '[[ -n "$gate_pid" ]] && kill -9 "$gate_pid" 2>/dev/null; rm -rf "$gate_dir"' EXIT
go build -o "$gate_dir/fossd" ./cmd/fossd
gate_addr=127.0.0.1:8497
gate_train="-workload job -scale 0.35 -iters 1 -sim 20 -real 6 -validate 6 -rollouts 1"
wait_up() {
  for _ in $(seq 1 120); do
    curl -sf "http://$gate_addr/v1/stats" >/dev/null 2>&1 && return 0
    sleep 1
  done
  return 1
}
# shellcheck disable=SC2086
"$gate_dir/fossd" $gate_train -serve-http "$gate_addr" -state-dir "$gate_dir/state" >"$gate_dir/first.log" 2>&1 &
gate_pid=$!
wait_up || { cat "$gate_dir/first.log"; echo "FAIL: first fossd never came up"; exit 1; }
curl -sf "http://$gate_addr/v1/optimize" -d '{"query_id": "1_1", "execute": true}' >"$gate_dir/plan1.json"
curl -sf -X POST "http://$gate_addr/v1/checkpoint" >/dev/null
# journal one more execution past the checkpoint: it must survive via the WAL
curl -sf "http://$gate_addr/v1/optimize" -d '{"query_id": "2_1", "execute": true}' >/dev/null
kill -9 "$gate_pid" 2>/dev/null; wait "$gate_pid" 2>/dev/null || true
# shellcheck disable=SC2086
"$gate_dir/fossd" $gate_train -serve-http "$gate_addr" -state-dir "$gate_dir/state" >"$gate_dir/second.log" 2>&1 &
gate_pid=$!
wait_up || { cat "$gate_dir/second.log"; echo "FAIL: restarted fossd never came up"; exit 1; }
grep -q "warm restart" "$gate_dir/second.log" || { cat "$gate_dir/second.log"; echo "FAIL: restart retrained instead of recovering"; exit 1; }
curl -sf "http://$gate_addr/v1/optimize" -d '{"query_id": "1_1"}' >"$gate_dir/plan2.json"
curl -sf "http://$gate_addr/v1/stats" >"$gate_dir/stats.json"
kill "$gate_pid" 2>/dev/null; wait "$gate_pid" 2>/dev/null || true
gate_pid=""
key1=$(sed -n 's/.*"icp_key":"\([^"]*\)".*/\1/p' "$gate_dir/plan1.json")
key2=$(sed -n 's/.*"icp_key":"\([^"]*\)".*/\1/p' "$gate_dir/plan2.json")
replayed=$(sed -n 's/.*"Replayed":\([0-9]*\).*/\1/p' "$gate_dir/stats.json")
[[ -n "$key1" && "$key1" == "$key2" ]] || { echo "FAIL: post-restart plan '$key2' != pre-crash plan '$key1'"; exit 1; }
[[ "${replayed:-0}" -ge 1 ]] || { echo "FAIL: post-checkpoint WAL record not replayed (replayed=$replayed)"; exit 1; }
echo "recovery gate OK: plan '$key1' served identically across kill -9 (walReplayed=$replayed)"

if [[ $quick -eq 0 ]]; then
  ncpu=$(nproc 2>/dev/null || echo 1)
  if [[ "$ncpu" -ge 4 ]]; then
    echo "== perf snapshot (BENCH_4.json) =="
    # Hardware-gated like the speedup check: on weak runners the numbers are
    # noise; run `make bench` manually to refresh the snapshot anywhere.
    scripts/bench.sh
    echo "== parallel training speedup (workers=1 vs workers=4) =="
    go test -run xxx -bench 'BenchmarkTrainParallel/workers=(1|4)$' -benchtime 3x . | tee /tmp/foss_bench.txt
    awk '
      /workers=1/ { base = $3 }
      /workers=4/ { par = $3 }
      END {
        if (base > 0 && par > 0) {
          ratio = base / par
          printf "speedup workers=4 vs workers=1: %.2fx\n", ratio
          if (ratio < 1.5) { print "FAIL: speedup below 1.5x"; exit 1 }
        }
      }' /tmp/foss_bench.txt
  else
    echo "== skipping bench snapshot + speedup check: only $ncpu CPU(s) available (needs >= 4) =="
  fi
fi

echo "CI OK"
