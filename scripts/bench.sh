#!/usr/bin/env bash
# bench.sh — the repository's perf snapshot: runs the parallel-training,
# online-serving, metrics-overhead, tiered-serving, batched-serving,
# durability (checkpoint + WAL-replay), multi-tenant sharded-serving,
# gate-proxied serving, and schema-evolution (catalog-apply + tier-0
# re-warm) benchmarks, times a full fosslint pass over the
# module, and emits a machine-readable BENCH_10.json.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=3x scripts/bench.sh      # more iterations per benchmark
#   CPUS=1,2,4 scripts/bench.sh        # sweep GOMAXPROCS (go test -cpu);
#                                      # each row records its gomaxprocs
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_10.json}"
benchtime="${BENCHTIME:-1x}"
# The parallelism actually benched, not the machine's core count: an explicit
# CPUS sweep, else the ambient GOMAXPROCS cap, else every hardware thread.
cpus="${CPUS:-${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}}"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== go test -bench TrainParallel|ServeOnline|ServeWithMetrics|ServeTiered|TierRouter|ServeBatch|Checkpoint|WALReplay|ShardedServe|GateProxy|CatalogApply|Tier0RewarmAfterDDL (benchtime=$benchtime cpu=$cpus) =="
go test -run xxx -bench 'BenchmarkTrainParallel|BenchmarkServeOnline|BenchmarkServeWithMetrics|BenchmarkServeTiered|BenchmarkTierRouter|BenchmarkServeBatch|BenchmarkCheckpoint|BenchmarkWALReplay|BenchmarkShardedServe|BenchmarkGateProxy|BenchmarkCatalogApply|BenchmarkTier0RewarmAfterDDL' \
  -benchtime "$benchtime" -cpu "$cpus" . | tee "$tmp"

# Static-analysis wall time: the whole-module fosslint pass is part of every
# CI run, so the snapshot records how much it costs (ci.sh gates it at 10s).
lintbin=$(mktemp -d)
go build -o "$lintbin/fosslint" ./cmd/fosslint
lint_t0=$(date +%s%N)
"$lintbin/fosslint" ./... >/dev/null
lint_t1=$(date +%s%N)
rm -rf "$lintbin"
lint_ms=$(( (lint_t1 - lint_t0) / 1000000 ))
echo "fosslint full-module pass: ${lint_ms}ms"

awk -v arch="$(uname -m)" -v cpus="$cpus" -v benchtime="$benchtime" -v lintms="$lint_ms" '
  /^Benchmark/ {
    name = $1; procs = 1
    if (match(name, /-[0-9]+$/)) {
      procs = substr(name, RSTART + 1)
      name = substr(name, 1, RSTART - 1)
    }
    rows = rows sep sprintf("    {\"name\": \"%s\", \"gomaxprocs\": %s, \"iters\": %s, \"ns_per_op\": %s}",
                            name, procs, $2, $3)
    sep = ",\n"
  }
  END {
    if (rows == "") { print "no benchmark rows parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"schema\": \"foss-bench/1\",\n"
    printf "  \"pr\": 10,\n"
    printf "  \"arch\": \"%s\",\n", arch
    printf "  \"cpus\": %s,\n", (cpus ~ /^[0-9]+$/ ? cpus : "\"" cpus "\"")
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"fosslint_ms\": %s,\n", lintms
    printf "  \"benchmarks\": [\n%s\n  ]\n", rows
    printf "}\n"
  }' "$tmp" > "$out"

echo "wrote $out"
