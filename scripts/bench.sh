#!/usr/bin/env bash
# bench.sh — the repository's perf snapshot: runs the parallel-training,
# online-serving, batched-serving, durability (checkpoint + WAL-replay), and
# multi-tenant sharded-serving benchmarks and emits a machine-readable
# BENCH_5.json.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=3x scripts/bench.sh   # more iterations per benchmark
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_5.json}"
benchtime="${BENCHTIME:-1x}"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== go test -bench TrainParallel|ServeOnline|ServeBatch|Checkpoint|WALReplay|ShardedServe (benchtime=$benchtime) =="
go test -run xxx -bench 'BenchmarkTrainParallel|BenchmarkServeOnline|BenchmarkServeBatch|BenchmarkCheckpoint|BenchmarkWALReplay|BenchmarkShardedServe' \
  -benchtime "$benchtime" . | tee "$tmp"

awk -v arch="$(uname -m)" -v ncpu="$(nproc 2>/dev/null || echo 1)" \
    -v benchtime="$benchtime" '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    rows = rows sep sprintf("    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s}", name, $2, $3)
    sep = ",\n"
  }
  END {
    if (rows == "") { print "no benchmark rows parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"schema\": \"foss-bench/1\",\n"
    printf "  \"pr\": 5,\n"
    printf "  \"arch\": \"%s\",\n", arch
    printf "  \"cpus\": %s,\n", ncpu
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": [\n%s\n  ]\n", rows
    printf "}\n"
  }' "$tmp" > "$out"

echo "wrote $out"
