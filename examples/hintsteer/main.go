// Hintsteer contrasts the two steering granularities the paper discusses:
// Bao-style coarse hint sets (disable an operator class for the whole query)
// versus FOSS-style fine-grained edits (override one join, swap two tables).
// For each mechanism it reports the best plan reachable on a sample of
// queries, illustrating the paper's S2 argument: coarse hints cap the
// achievable plan quality.
package main

import (
	"fmt"
	"log"

	"github.com/foss-db/foss/internal/backend"
	"github.com/foss-db/foss/internal/baselines/bao"
	"github.com/foss-db/foss/internal/optimizer"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/workload"
)

func main() {
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.4})
	if err != nil {
		log.Fatal(err)
	}
	// The backend API: Plan/HintedPlan/Execute are the contract every engine
	// implements; coarse hinting is a Selinger-specific capability.
	be := backend.NewSelinger(w.DB, w.Stats)

	fmt.Printf("%-8s %10s %12s %12s %9s\n", "query", "expert", "bestCoarse", "bestFine(2)", "gap")
	totalCoarse, totalFine := 0.0, 0.0
	for _, q := range w.Train[:12] {
		cp, err := be.Plan(q)
		if err != nil {
			continue
		}
		origLat := be.Execute(cp, 0).LatencyMs

		// Coarse: best of Bao's five hint sets.
		bestCoarse := origLat
		for _, h := range bao.DefaultHintSets() {
			hcp, err := be.PlanCoarse(q, optimizer.Config{DisabledJoins: h.Disabled})
			if err != nil {
				continue
			}
			if r := be.Execute(hcp, origLat*2); !r.TimedOut && r.LatencyMs < bestCoarse {
				bestCoarse = r.LatencyMs
			}
		}

		// Fine: best plan within two Swap/Override edits of the original.
		icp, err := plan.Extract(cp)
		if err != nil {
			continue
		}
		space := plan.NewSpace(q.NumTables())
		bestFine := origLat
		for id1 := 1; id1 <= space.Size(); id1++ {
			next1, err := space.Apply(icp, space.Decode(id1))
			if err != nil {
				continue
			}
			if hcp, err := be.HintedPlan(q, next1); err == nil {
				if r := be.Execute(hcp, origLat*1.5); !r.TimedOut && r.LatencyMs < bestFine {
					bestFine = r.LatencyMs
				}
			}
			for id2 := 1; id2 <= space.Size(); id2 += 7 { // stride: keep runtime bounded
				next2, err := space.Apply(next1, space.Decode(id2))
				if err != nil {
					continue
				}
				hcp, err := be.HintedPlan(q, next2)
				if err != nil {
					continue
				}
				if r := be.Execute(hcp, origLat*1.5); !r.TimedOut && r.LatencyMs < bestFine {
					bestFine = r.LatencyMs
				}
			}
		}
		totalCoarse += bestCoarse
		totalFine += bestFine
		fmt.Printf("%-8s %9.1fms %11.1fms %11.1fms %8.2fx\n",
			q.ID, origLat, bestCoarse, bestFine, bestCoarse/bestFine)
	}
	fmt.Printf("\ntotals: coarse=%.1fms fine=%.1fms — fine-grained edits reach %.2fx further\n",
		totalCoarse, totalFine, totalCoarse/totalFine)
}
