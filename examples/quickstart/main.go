// Quickstart: load a benchmark, train FOSS briefly, and doctor one query —
// then doctor a whole batch in one call.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/foss-db/foss"
)

func main() {
	ctx := context.Background()

	// Generate the JOB-like benchmark at quarter scale (fast to build).
	w, err := foss.LoadWorkload("job", foss.WorkloadOptions{Seed: 1, Scale: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d rows, %d train / %d test queries\n",
		w.Name, w.DB.TotalRows(), len(w.Train), len(w.Test))
	fmt.Printf("available backends: %v (this run uses the default)\n", foss.BackendNames())

	cfg := foss.DefaultConfig()
	cfg.Learner.Iterations = 3
	cfg.Learner.SimPerIter = 60
	cfg.Learner.RealPerIter = 15
	cfg.Learner.ValidatePerIter = 15
	sys, err := foss.New(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training FOSS (3 short iterations)...")
	if err := sys.TrainContext(ctx, nil); err != nil {
		log.Fatal(err)
	}

	q := w.Train[0]
	fmt.Printf("\nquery %s:\n  %s\n", q.ID, q.SQL())

	expert, _, err := sys.ExpertPlan(q)
	if err != nil {
		log.Fatal(err)
	}
	doctored, optTime, err := sys.OptimizeContext(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexpert plan (simulated %.1f ms):\n%s", sys.Execute(expert), expert)
	fmt.Printf("\nFOSS plan (simulated %.1f ms, optimized in %v):\n%s",
		sys.Execute(doctored), optTime.Truncate(1e6), doctored)

	// Batched serving: every query's candidates share one stacked AAM
	// scoring pass — the per-query plans are bit-identical to one-at-a-time
	// Optimize calls.
	batch := w.Test
	plans, batchTime, err := sys.OptimizeBatch(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	var fossMs, expertMs float64
	for i, cp := range plans {
		fossMs += sys.Execute(cp)
		if ecp, _, err := sys.ExpertPlan(batch[i]); err == nil {
			expertMs += sys.Execute(ecp)
		}
	}
	fmt.Printf("\nbatched the %d test queries in %v: expert %.0f ms vs FOSS %.0f ms total\n",
		len(batch), batchTime.Truncate(1e6), expertMs, fossMs)
}
