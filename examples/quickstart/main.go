// Quickstart: load a benchmark, train FOSS briefly, and doctor one query.
package main

import (
	"fmt"
	"log"

	"github.com/foss-db/foss"
)

func main() {
	// Generate the JOB-like benchmark at quarter scale (fast to build).
	w, err := foss.LoadWorkload("job", foss.WorkloadOptions{Seed: 1, Scale: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d rows, %d train / %d test queries\n",
		w.Name, w.DB.TotalRows(), len(w.Train), len(w.Test))

	cfg := foss.DefaultConfig()
	cfg.Learner.Iterations = 3
	cfg.Learner.SimPerIter = 60
	cfg.Learner.RealPerIter = 15
	cfg.Learner.ValidatePerIter = 15
	sys, err := foss.New(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training FOSS (3 short iterations)...")
	if err := sys.Train(nil); err != nil {
		log.Fatal(err)
	}

	q := w.Train[0]
	fmt.Printf("\nquery %s:\n  %s\n", q.ID, q.SQL())

	expert, _, err := sys.ExpertPlan(q)
	if err != nil {
		log.Fatal(err)
	}
	doctored, optTime, err := sys.Optimize(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexpert plan (simulated %.1f ms):\n%s", sys.Execute(expert), expert)
	fmt.Printf("\nFOSS plan (simulated %.1f ms, optimized in %v):\n%s",
		sys.Execute(doctored), optTime.Truncate(1e6), doctored)
}
