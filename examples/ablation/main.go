// Ablation runs a miniature maxsteps sweep (the paper's §VI-C1 analysis):
// larger maxsteps widen the search space per episode but make both the
// agent's exploration and the AAM's selection harder. The sweep runs once
// per optimizer backend — the paper's cross-DBMS protocol — with each
// backend's GMRL measured against its own expert on its own latency
// surface.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/foss-db/foss/internal/backend"
	"github.com/foss-db/foss/internal/experiments"
)

func main() {
	for _, be := range backend.Names() {
		opts := experiments.Opts{Scale: 0.25, Seed: 1, Fast: true, Backend: be}
		fmt.Printf("mini maxsteps sweep on JOB, backend=%s (expert baseline: %s):\n",
			be, experiments.ExpertName(be))
		for _, ab := range []experiments.AblationName{
			experiments.Maxsteps2, experiments.Maxsteps3,
			experiments.Maxsteps4, experiments.Maxsteps5,
		} {
			row, _, err := experiments.RunAblation(os.Stdout, "job", ab, opts, false)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-20s trainTime=%6.1fs optTime=%7.2fms GMRL=%.3f\n",
				row.Config, row.TrainTimeSec, row.OptTimeMs, row.GMRL)
		}
	}
}
