// Fleet runs a hospital group instead of one doctor: a shard router boots
// two tenants over different optimizer backends (acme on selinger, globex
// on the hash-centric gaussim), each with its own trained doctor, plan
// cache, and private state directory, all sharing one bounded worker pool.
// Both tenants serve concurrently; their epochs, buffers, and checkpoints
// never touch.
//
// The second act is the deploy story: the fleet is drained — intake stops,
// in-flight work finishes, a final checkpoint lands per tenant, WAL locks
// release — and a successor fleet over the same state directory warm-starts
// every tenant bit-identically, no retraining. That is the difference
// between surviving a crash (PR 4) and surviving a deploy.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/core"
	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/service"
	"github.com/foss-db/foss/internal/shard"
	"github.com/foss-db/foss/internal/store"
)

func fleetConfig(stateDir string) shard.Config {
	sys := core.DefaultConfig()
	sys.StateNet = aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	sys.PlanCache = 128
	sys.Learner.Iterations = 1
	sys.Learner.RealPerIter = 5
	sys.Learner.SimPerIter = 16
	sys.Learner.ValidatePerIter = 5
	sys.Learner.InferenceRollouts = 1
	return shard.Config{
		System: sys,
		Loop: service.Config{
			Detector:          service.DetectorConfig{Window: 8, Threshold: 1e12, MinSamples: 8},
			Cooldown:          1 << 30,
			RetrainIterations: 1,
			Background:        true,
		},
		Defaults:         shard.TenantSpec{Workload: "job", Scale: 0.3, Seed: 1},
		StateDir:         stateDir,
		Workers:          2,
		CheckpointOnBoot: true,
		OnEvent: func(tenant, event string) {
			fmt.Printf("   [%s] %s\n", tenant, event)
		},
	}
}

func main() {
	ctx := context.Background()
	stateDir, err := os.MkdirTemp("", "foss-fleet-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateDir)
	specs := []shard.TenantSpec{
		{Name: "acme", Backend: "selinger"},
		{Name: "globex", Backend: "gaussim"},
	}

	fmt.Println("== one process, two tenants, two engines ==")
	router, err := shard.NewRouter(ctx, fleetConfig(stateDir), specs)
	if err != nil {
		log.Fatal(err)
	}

	// Both tenants take traffic; each doctor serves its own workload data
	// through its own backend.
	probes := map[string]string{}
	for _, name := range router.Names() {
		sh, err := router.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, q := range sh.W.Train[:6] {
			if _, _, err := sh.Step(ctx, q); err != nil {
				log.Fatal(err)
			}
		}
		res, err := sh.Serve(ctx, sh.W.Test[0])
		if err != nil {
			log.Fatal(err)
		}
		probes[name] = res.Eval.ICP.Key()
		st := sh.Sys.OnlineStats()
		fmt.Printf("   [%s] backend=%s served=%d recorded=%d epoch=%d plan(test0)=%s\n",
			name, sh.Sys.BackendName(), st.Served, st.Recorded, st.Epoch, probes[name])
	}

	// A tenant's state dir is single-writer while its shard lives.
	if _, err := store.Open(stateDir + "/acme"); !errors.Is(err, fosserr.ErrStoreLocked) {
		log.Fatalf("double open should be refused, got %v", err)
	}
	fmt.Println("   second writer on acme's state dir refused: ErrStoreLocked")

	fmt.Println("== drain: the deploy-safe shutdown ==")
	if err := router.Close(ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := router.Get("acme"); errors.Is(err, fosserr.ErrLoopClosed) {
		fmt.Println("   fleet drained; routes now refuse with ErrLoopClosed")
	}

	fmt.Println("== successor fleet warm-starts from the drain checkpoints ==")
	router2, err := shard.NewRouter(ctx, fleetConfig(stateDir), specs)
	if err != nil {
		log.Fatal(err)
	}
	defer router2.Close(ctx)
	for _, name := range router2.Names() {
		sh, err := router2.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		if !sh.Recovery.Recovered {
			log.Fatalf("tenant %s cold-started; the drain checkpoint went missing", name)
		}
		res, err := sh.Serve(ctx, sh.W.Test[0])
		if err != nil {
			log.Fatal(err)
		}
		match := "BIT-IDENTICAL"
		if res.Eval.ICP.Key() != probes[name] {
			match = "DIVERGED (bug!)"
		}
		fmt.Printf("   [%s] recovered epoch=%d buffer=%d plan(test0)=%s  %s\n",
			name, sh.Recovery.Epoch, sh.Recovery.BufferRestored, res.Eval.ICP.Key(), match)
	}
}
