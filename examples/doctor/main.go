// Doctor reproduces the paper's §I anecdote (JOB query 1b): the traditional
// optimizer picks a hash join between a tiny filtered dimension and a fact
// table because of a cardinality overestimate; overriding the join method to
// a nested loop and swapping two tables recovers a large speedup. This
// example finds such a query in the generated workload and applies the two
// edits by hand through the same Swap/Override action space FOSS learns
// over.
//
// Part two then shows the doctor staying on call: the trained system serves
// an online stream whose parameter distribution shifts mid-way, the drift
// detector notices, a retrain runs against the live feedback, and the
// refreshed model is hot-swapped in — after which the shifted tail runs
// faster than a frozen copy of the same model ever would.
//
// Part three ports the doctor to a second hospital: the same machinery
// trains over the gaussim backend (a hash-centric engine with different
// cost-model error), whose expert leaves different latency on the table —
// and the doctor recovers it there too.
//
// Part four makes the doctor durable: the trained system checkpoints to a
// state directory, served feedback journals to a WAL, and a "crashed"
// process is rebuilt from disk alone — same epoch, same buffer, same plans,
// no retraining — while a snapshot from the wrong backend is refused.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/backend"
	"github.com/foss-db/foss/internal/core"
	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/service"
	"github.com/foss-db/foss/internal/store"
	"github.com/foss-db/foss/internal/workload"
)

func main() {
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	be := backend.NewSelinger(w.DB, w.Stats)

	// Scan the workload for the best single-override win: the 1b pattern.
	type win struct {
		qid           string
		orig, fixed   float64
		action        plan.Action
		origI, fixedI plan.ICP
	}
	var best win
	for _, q := range w.All() {
		cp, err := be.Plan(q)
		if err != nil {
			continue
		}
		origLat := be.Execute(cp, 0).LatencyMs
		icp, err := plan.Extract(cp)
		if err != nil {
			continue
		}
		space := plan.NewSpace(q.NumTables())
		for id := 1; id <= space.Size(); id++ {
			a := space.Decode(id)
			next, err := space.Apply(icp, a)
			if err != nil {
				continue
			}
			hcp, err := be.HintedPlan(q, next)
			if err != nil {
				continue
			}
			res := be.Execute(hcp, origLat*1.5)
			if res.TimedOut {
				continue
			}
			if best.orig == 0 || origLat/res.LatencyMs > best.orig/best.fixed {
				if origLat/res.LatencyMs > 1 {
					best = win{q.ID, origLat, res.LatencyMs, a, icp, next}
				}
			}
		}
	}
	if best.qid == "" {
		log.Fatal("no single-edit improvement found (unexpected)")
	}
	fmt.Printf("the paper's query-1b pattern, found in this workload:\n\n")
	fmt.Printf("query %s\n", best.qid)
	fmt.Printf("  original plan: %v\n", best.origI)
	fmt.Printf("  one doctor edit: %v\n", best.action)
	fmt.Printf("  doctored plan: %v\n", best.fixedI)
	fmt.Printf("  simulated latency: %.2f ms -> %.2f ms (%.1fx speedup)\n",
		best.orig, best.fixed, best.orig/best.fixed)
	fmt.Println("\nFOSS learns to make exactly this kind of edit automatically.")

	fmt.Println("\n--- part two: the doctor stays on call ---")
	onlineDemo(w)

	fmt.Println("\n--- part three: the doctor changes hospitals ---")
	portabilityDemo(w)

	fmt.Println("\n--- part four: the doctor survives a crash ---")
	durabilityDemo(w)
}

// durabilityDemo trains a small doctor, serves some feedback through a
// durable online loop, then rebuilds the whole thing from the state
// directory as a crashed process would — proving the recovered replica
// serves the same plans at the same epoch without retraining.
func durabilityDemo(w *workload.Workload) {
	ctx := context.Background()
	cfg := core.DefaultConfig()
	cfg.StateNet = aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	cfg.Learner.Iterations = 2
	cfg.Learner.RealPerIter = 8
	cfg.Learner.SimPerIter = 30
	cfg.Learner.ValidatePerIter = 8
	cfg.Learner.InferenceRollouts = 2

	dir, err := os.MkdirTemp("", "foss-state-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}

	loopCfg := service.Config{
		Detector:        service.DetectorConfig{Window: 8, Threshold: 1e9, MinSamples: 8},
		Cooldown:        1 << 30, // durability demo: keep the detector quiet
		Background:      false,
		CheckpointEvery: 8,
	}

	sys, err := core.New(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training offline...")
	if err := sys.TrainContext(ctx, nil); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.RecoverOnline(loopCfg, st); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Online().Checkpoint(); err != nil {
		log.Fatal(err)
	}
	for _, q := range w.Train[:12] { // feedback past the checkpoint lives in the WAL
		if _, _, err := sys.ServeStepContext(ctx, q); err != nil {
			log.Fatal(err)
		}
	}
	probe := w.Test[0]
	res, err := sys.ServeContext(ctx, probe)
	if err != nil {
		log.Fatal(err)
	}
	preKey, preEpoch := res.Eval.ICP.Key(), sys.OnlineStats().Epoch
	preBuf := len(sys.ExportBuffer())
	st.Close()
	fmt.Printf("served 12 queries, checkpointed, journaled; then the process \"crashes\"\n")

	// A fresh process: different seed, nothing in memory — disk is all it has.
	st2, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer st2.Close()
	cfg.Seed = 99
	fresh, err := core.New(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	info, err := fresh.RecoverOnline(loopCfg, st2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered from %s: checkpoint=%s epoch=%d buffer=%d walReplayed=%d\n",
		dir, info.Checkpoint, info.Epoch, info.BufferRestored, info.WALReplayed)
	res2, err := fresh.ServeContext(ctx, probe)
	if err != nil {
		log.Fatal(err)
	}
	same := res2.Eval.ICP.Key() == preKey && fresh.OnlineStats().Epoch == preEpoch &&
		len(fresh.ExportBuffer()) == preBuf
	fmt.Printf("pre-crash plan == recovered plan: %v (epoch %d, buffer %d entries)\n",
		same, fresh.OnlineStats().Epoch, len(fresh.ExportBuffer()))

	// And the guard rail: the selinger-trained checkpoint refuses to load
	// into a gaussim system.
	gau, err := core.New(w, cfg, core.WithBackend(backend.NewGaussim(w.DB, w.Stats)))
	if err != nil {
		log.Fatal(err)
	}
	blob, err := fresh.Save()
	if err != nil {
		log.Fatal(err)
	}
	if err := gau.Load(blob); errors.Is(err, fosserr.ErrBackendMismatch) {
		fmt.Println("cross-backend load refused: snapshot is selinger-tagged, system runs gaussim ✓")
	} else {
		log.Fatalf("cross-backend load was not refused: %v", err)
	}
	fmt.Println("\nthe doctor's experience now outlives the process that gathered it.")
}

// onlineDemo trains a small FOSS system, then runs the online loop over a
// selectivity-shifted stream: feedback ingestion, drift detection,
// synchronous retraining (deterministic output), and hot-swap.
func onlineDemo(w *workload.Workload) {
	cfg := core.DefaultConfig()
	cfg.StateNet = aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	cfg.PlanCache = 64
	cfg.Learner.Iterations = 2
	cfg.Learner.RealPerIter = 8
	cfg.Learner.SimPerIter = 30
	cfg.Learner.ValidatePerIter = 8
	cfg.Learner.InferenceRollouts = 2
	sys, err := core.New(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	fmt.Println("training offline...")
	if err := sys.TrainContext(ctx, nil); err != nil {
		log.Fatal(err)
	}

	// A frozen twin keeps serving the stale model for comparison.
	frozen, err := sys.Clone()
	if err != nil {
		log.Fatal(err)
	}

	scen, err := workload.Drift(w, workload.DriftSelectivity, workload.DriftOptions{
		Seed: 7, PreLen: 15, PostLen: 45,
	})
	if err != nil {
		log.Fatal(err)
	}
	err = sys.EnableOnline(service.Config{
		Detector: service.DetectorConfig{
			Window: 10, Threshold: 1.05, MinSamples: 10, NoveltyFrac: 0.5,
		},
		Cooldown:          12,
		RetrainIterations: 2,
		RetrainQueries:    24,
		Background:        false, // synchronous keeps the demo deterministic
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("serving %d queries; the parameter distribution shifts at query %d\n",
		len(scen.Stream()), scen.ShiftAt()+1)
	var onlineSum, frozenSum float64
	var lastSwaps uint64
	for i, q := range scen.Stream() {
		_, lat, err := sys.ServeStepContext(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		cp, _, err := frozen.OptimizeContext(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		flat := frozen.Execute(cp)
		if i >= scen.ShiftAt() {
			onlineSum += lat
			frozenSum += flat
		}
		if st := sys.OnlineStats(); st.Swaps > lastSwaps {
			lastSwaps = st.Swaps
			fmt.Printf("  query %3d: drift detected -> retrained -> hot-swapped to epoch %d\n", i+1, st.Epoch)
		}
	}
	st := sys.OnlineStats()
	n := float64(len(scen.Post))
	fmt.Printf("drift detected %d time(s); %d retrain(s); %d zero-downtime hot-swap(s); final epoch %d\n",
		st.Drifts, st.Retrains, st.Swaps, st.Epoch)
	fmt.Printf("shifted tail, frozen model: %8.2fms mean\n", frozenSum/n)
	fmt.Printf("shifted tail, online model: %8.2fms mean (%.2fx)\n",
		onlineSum/n, (frozenSum/n)/(onlineSum/n))
	fmt.Println("\nthe doctor that keeps learning beats the doctor that graduated.")
}

// portabilityDemo trains the identical doctor machinery over the gaussim
// backend — the openGauss-flavored engine whose cost model errs in different
// directions — and shows it repairing that engine's regret too.
func portabilityDemo(w *workload.Workload) {
	ctx := context.Background()
	cfg := core.DefaultConfig()
	cfg.StateNet = aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	cfg.Learner.Iterations = 2
	cfg.Learner.RealPerIter = 8
	cfg.Learner.SimPerIter = 30
	cfg.Learner.ValidatePerIter = 8
	cfg.Learner.InferenceRollouts = 2

	for _, name := range backend.Names() {
		be, err := backend.New(name, w.DB, w.Stats)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := core.New(w, cfg, core.WithBackend(be))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("training the doctor over %q...\n", name)
		if err := sys.TrainContext(ctx, nil); err != nil {
			log.Fatal(err)
		}
		var expertMs, fossMs float64
		plans, _, err := sys.OptimizeBatch(ctx, w.Test)
		if err != nil {
			log.Fatal(err)
		}
		for i, cp := range plans {
			ecp, _, err := sys.ExpertPlan(w.Test[i])
			if err != nil {
				continue
			}
			expertMs += sys.Execute(ecp)
			fossMs += sys.Execute(cp)
		}
		fmt.Printf("  %-9s test split: expert %8.1f ms -> doctored %8.1f ms (%.2fx)\n",
			name, expertMs, fossMs, expertMs/fossMs)
	}
	fmt.Println("\nsame doctor, different hospitals: the steering layer is backend-portable.")
}
