// Doctor reproduces the paper's §I anecdote (JOB query 1b): the traditional
// optimizer picks a hash join between a tiny filtered dimension and a fact
// table because of a cardinality overestimate; overriding the join method to
// a nested loop and swapping two tables recovers a large speedup. This
// example finds such a query in the generated workload and applies the two
// edits by hand through the same Swap/Override action space FOSS learns
// over.
package main

import (
	"fmt"
	"log"

	"github.com/foss-db/foss/internal/engine/exec"
	"github.com/foss-db/foss/internal/optimizer"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/workload"
)

func main() {
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	opt := optimizer.New(w.DB, w.Stats)
	ex := exec.New(w.DB)

	// Scan the workload for the best single-override win: the 1b pattern.
	type win struct {
		qid           string
		orig, fixed   float64
		action        plan.Action
		origI, fixedI plan.ICP
	}
	var best win
	for _, q := range w.All() {
		cp, err := opt.Plan(q)
		if err != nil {
			continue
		}
		origLat := ex.Execute(cp, 0).LatencyMs
		icp, err := plan.Extract(cp)
		if err != nil {
			continue
		}
		space := plan.NewSpace(q.NumTables())
		for id := 1; id <= space.Size(); id++ {
			a := space.Decode(id)
			next, err := space.Apply(icp, a)
			if err != nil {
				continue
			}
			hcp, err := opt.HintedPlan(q, next)
			if err != nil {
				continue
			}
			res := ex.Execute(hcp, origLat*1.5)
			if res.TimedOut {
				continue
			}
			if best.orig == 0 || origLat/res.LatencyMs > best.orig/best.fixed {
				if origLat/res.LatencyMs > 1 {
					best = win{q.ID, origLat, res.LatencyMs, a, icp, next}
				}
			}
		}
	}
	if best.qid == "" {
		log.Fatal("no single-edit improvement found (unexpected)")
	}
	fmt.Printf("the paper's query-1b pattern, found in this workload:\n\n")
	fmt.Printf("query %s\n", best.qid)
	fmt.Printf("  original plan: %v\n", best.origI)
	fmt.Printf("  one doctor edit: %v\n", best.action)
	fmt.Printf("  doctored plan: %v\n", best.fixedI)
	fmt.Printf("  simulated latency: %.2f ms -> %.2f ms (%.1fx speedup)\n",
		best.orig, best.fixed, best.orig/best.fixed)
	fmt.Println("\nFOSS learns to make exactly this kind of edit automatically.")
}
