// Jobtour trains FOSS end-to-end on the JOB-like workload and walks through
// the evaluation: WRL/GMRL on both splits and the queries where the
// doctor's edits mattered most.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"github.com/foss-db/foss"
	"github.com/foss-db/foss/internal/learner"
	"github.com/foss-db/foss/internal/metrics"
	"github.com/foss-db/foss/internal/query"
)

func main() {
	w, err := foss.LoadWorkload("job", foss.WorkloadOptions{Seed: 1, Scale: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	cfg := foss.DefaultConfig()
	cfg.Learner.Iterations = 6
	cfg.Learner.SimPerIter = 150
	cfg.Learner.RealPerIter = 30
	cfg.Learner.ValidatePerIter = 30
	sys, err := foss.New(w, cfg)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	fmt.Println("training FOSS on JOB...")
	if err := sys.TrainContext(ctx, func(st learner.IterStats) {
		fmt.Printf("  iter %d: buffer=%d aamAcc=%.2f validated=%d\n",
			st.Iter, st.BufferSize, st.AAMAccuracy, st.Validated)
	}); err != nil {
		log.Fatal(err)
	}

	type qwin struct {
		id      string
		speedup float64
	}
	var wins []qwin
	for _, split := range []struct {
		name string
		qs   []*query.Query
	}{
		{"train", w.Train}, {"test", w.Test},
	} {
		var fossRes, pgRes []metrics.QueryResult
		for _, q := range split.qs {
			fcp, ot, err := sys.OptimizeContext(ctx, q)
			if err != nil {
				continue
			}
			ecp, eot, err := sys.ExpertPlan(q)
			if err != nil {
				continue
			}
			fl, el := sys.Execute(fcp), sys.Execute(ecp)
			fossRes = append(fossRes, metrics.QueryResult{QueryID: q.ID, LatencyMs: fl, OptTimeMs: ot.Seconds() * 1000})
			pgRes = append(pgRes, metrics.QueryResult{QueryID: q.ID, LatencyMs: el, OptTimeMs: eot.Seconds() * 1000})
			if el/fl > 1.05 {
				wins = append(wins, qwin{q.ID, el / fl})
			}
		}
		fmt.Printf("%s: WRL=%.3f GMRL=%.3f over %d queries\n",
			split.name, metrics.WRL(fossRes, pgRes), metrics.GMRL(fossRes, pgRes), len(split.qs))
	}

	sort.Slice(wins, func(i, j int) bool { return wins[i].speedup > wins[j].speedup })
	fmt.Println("\ntop doctored queries:")
	for i, wq := range wins {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-8s %.2fx\n", wq.id, wq.speedup)
	}
}
